// The Lauberhorn NIC: a network interface that is part of the OS (§4-§5).
//
// The NIC is a home agent on the coherent interconnect. Each RPC endpoint is
// a pair of CONTROL cache lines plus AUX lines homed on the NIC (Fig. 4):
//
//  * A core issues a (non-caching, blocking) load on CONTROL[p]; the NIC
//    defers the fill until a request is ready, then answers with a
//    DispatchLine: code pointer, data pointer, and the arguments.
//  * The core runs the handler, stores the ResponseLine into CONTROL[p]
//    (acquiring ownership from the NIC), and loads CONTROL[1-p] for the next
//    request. The NIC interprets that load as "response ready": it pulls
//    CONTROL[p] with a coherence fetch-exclusive and transmits the response.
//  * A fill deferred close to the coherence timeout is answered with
//    TRYAGAIN (§5.1); a RETIRE answer gives the core back to the OS (§5.2).
//
// The NIC mirrors OS scheduling state (pushed over the same interconnect) to
// decide, per packet, between the hot path (fill a stalled core), queueing
// (endpoint active but busy), and the cold path (deliver to a kernel control
// channel so the OS can schedule the process). It keeps per-endpoint load
// statistics and asks the OS for more or fewer cores.
//
// Large payloads revert to DMA through the PCIe substrate (§6).
#ifndef SRC_NIC_LAUBERHORN_NIC_H_
#define SRC_NIC_LAUBERHORN_NIC_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/coherence/interconnect.h"
#include "src/net/headers.h"
#include "src/net/link.h"
#include "src/nic/cost_model.h"
#include "src/nic/dispatch_line.h"
#include "src/nic/dispatch_policy/dispatch_policy.h"
#include "src/nic/toeplitz.h"
#include "src/os/kernel.h"
#include "src/overload/overload.h"
#include "src/pcie/pcie_link.h"
#include "src/proto/cipher.h"
#include "src/proto/dedup.h"
#include "src/proto/rpc_message.h"
#include "src/proto/service.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"
#include "src/stats/span.h"
#include "src/stats/trace.h"

namespace lauberhorn {

class NicShadow;

// How the NIC moves payloads that exceed the AUX capacity.
enum class LargeTransferPolicy {
  kAuto,            // cache lines up to dma_fallback_bytes, then DMA (§6)
  kForceCacheline,  // always cache lines (for the crossover experiment)
  kForceDma,        // always DMA
};

// Byte offset of the response region inside an endpoint's DMA buffer (the
// first half carries request args, the second half responses).
inline constexpr uint64_t kDmaBufferRespOffset = 64 * 1024;
inline constexpr uint64_t kDmaBufferSize = 128 * 1024;

class LauberhornNic : public HomeAgent, public PacketSink {
 public:
  struct Config {
    LineAddr base = 0x1'0000'0000;  // must not overlap host memory
    size_t num_endpoints = 64;       // service endpoints
    size_t num_kernel_channels = 8;  // kernel control channels (≈ #cores)
    // Continuation endpoints (§6): lightweight one-shot endpoints a handler
    // grabs to receive the reply of a nested RPC.
    size_t num_continuations = 32;
    uint16_t continuation_port_base = 50000;
    // This NIC's own L3 identity; nested RPCs addressed to it hairpin
    // through the TX/RX pipelines instead of the wire.
    uint32_t own_ip = MakeIpv4(10, 0, 0, 2);
    Duration hairpin_latency = Nanoseconds(150);
    // Inline crypto engine (§6): open request payloads / seal responses with
    // per-service keys.
    bool crypto = false;
    uint64_t crypto_root_key = 0;
    NicPipelineCosts pipeline;
    LauberhornParams params;
    LargeTransferPolicy large_policy = LargeTransferPolicy::kAuto;
    // At-most-once execution: remember (flow, request id) per request so a
    // client retransmit never runs the handler twice — duplicates of an
    // in-flight request are dropped (the original's response answers them),
    // and duplicates of a completed request replay the cached response.
    bool dedup = true;
    size_t dedup_window = 1024;  // completed entries remembered
    // Overload admission control on the RX pipeline (src/overload): quota +
    // sojourn checks run before a request is queued, and sheds answer with a
    // NIC-generated kOverloaded reply at zero host-CPU cost.
    AdmissionConfig admission;
    // Receiver-driven congestion control (DESIGN.md §15): every successful
    // response to an ECN-capable sender carries a grant — the endpoint
    // queue's free headroom divided by the senders seen within
    // grant_sender_window — capping that sender's window at the share of the
    // receive queue it can actually use. Sheds carry no grant (a shed is the
    // opposite of an invitation to send). ECN-blind senders are unaffected.
    bool grants_enabled = true;
    Duration grant_sender_window = Microseconds(100);
    uint16_t grant_max = 64;
    // Post-reset grant ramp (DESIGN.md §16): after a crash recovery, grants
    // are capped at the unscheduled window (the client's cc_initial_window)
    // for grant_ramp_window, so stale credits issued by the dead NIC plus
    // fresh ones cannot jointly over-admit into the reborn queues.
    uint16_t grant_reset_cap = 8;
    Duration grant_ramp_window = Microseconds(100);
    // Secret key for the per-VF Toeplitz RSS demux (§17). Defaults to the
    // NDIS verification key so flow placement is reproducible run to run.
    ToeplitzKey rss_key = kDefaultToeplitzKey;
  };

  // -- SR-IOV-style virtualization (§17) -----------------------------------
  // VF 0 is the physical function (PF): the device-wide trust domain every
  // pre-existing caller lives in (unlimited endpoint slice, device-wide
  // admission, legacy demux). CreateVf carves a virtual function with its
  // own endpoint-table slice cap, its own AdmissionConfig (token-bucket
  // quota + sojourn gate enforced on the NIC before any host work), a
  // private dedup namespace (the VF id is folded into every dedup flow key,
  // so identical (src, request id) pairs on two tenants can never collide),
  // and Toeplitz RSS spreading the tenant's flows across its polling cores.
  struct VfConfig {
    std::string name;           // tenant label (metrics/debug only)
    AdmissionConfig admission;  // per-VF gate, on top of the per-service one
    size_t endpoint_limit = 0;  // max service endpoints owned; 0 = unlimited
    // Tenant-default dispatch discipline (§18): applied to the VF's services
    // whose ServiceDef leaves the policy at kLegacy. A non-legacy ServiceDef
    // setting always wins (the service owner knows its workload best).
    std::optional<DispatchPolicyConfig> dispatch;
  };
  struct VfStats {
    uint64_t rx_requests = 0;      // requests demuxed into this VF
    uint64_t responses = 0;        // responses transmitted for this VF
    uint64_t sheds_queue = 0;      // per-reason sheds inside the VF slice
    uint64_t sheds_quota = 0;
    uint64_t sheds_sojourn = 0;
    uint64_t sheds_vf_quota = 0;   // the VF's own token bucket said no
    uint64_t rss_steered = 0;      // demux decided by the Toeplitz hash
    uint64_t rss_fallbacks = 0;    // hashed endpoint unusable: legacy picker
    uint64_t endpoints = 0;        // service endpoints currently owned
  };

  struct Stats {
    uint64_t hot_dispatches = 0;     // filled a stalled load directly
    uint64_t queued_dispatches = 0;  // endpoint active but busy: NIC-side queue
    uint64_t cold_dispatches = 0;    // delivered via a kernel channel
    uint64_t cold_queued = 0;        // waiting for a dispatcher to arrive
    uint64_t tryagains = 0;
    uint64_t retires = 0;
    uint64_t drops_queue_full = 0;
    uint64_t drops_bad_frame = 0;
    uint64_t drops_no_endpoint = 0;
    uint64_t drops_bad_args = 0;
    uint64_t responses_sent = 0;
    uint64_t dma_fallback_rx = 0;
    uint64_t dma_fallback_tx = 0;
    uint64_t dispatcher_wakeups = 0;
    uint64_t crypto_failures = 0;
    // Reliability layer.
    uint64_t dup_drops_in_flight = 0;  // duplicate of an executing request
    uint64_t dup_replays = 0;          // duplicate answered from the cache
    uint64_t degradations = 0;         // endpoint demoted to the cold path
    uint64_t degraded_dispatches = 0;  // requests routed cold while demoted
    uint64_t wedged_polls = 0;         // deliveries withheld by a wedge fault
    uint64_t drops_service_down = 0;   // RX while the OS/service is crashed
    // Overload control: requests shed with an explicit kOverloaded reply,
    // by reason. requests_shed_queue also covers the bounded cold queue.
    uint64_t requests_shed_queue = 0;
    uint64_t requests_shed_quota = 0;
    uint64_t requests_shed_sojourn = 0;
    uint64_t requests_shed_vf_quota = 0;  // per-VF (tenant) quota sheds
    // Congestion control (§15): grants attached to responses, and CE marks
    // observed on request frames echoed back to the sender.
    uint64_t grants_issued = 0;
    uint64_t ecn_echoes = 0;
    // Whole-NIC crash recovery (§16): packets blackholed while the device is
    // dead, CONTROL polls answered only by the bus-timeout TRYAGAIN path
    // (the watchdog's wedged-poll signal), and completed host-driven resets.
    uint64_t drops_nic_down = 0;
    uint64_t crashed_polls = 0;
    uint64_t nic_resets = 0;
  };

  LauberhornNic(Simulator& sim, CoherentInterconnect& interconnect, PcieLink& pcie,
                ServiceRegistry& services, Config config);

  const Config& config() const { return config_; }

  void set_tx_wire(LinkDirection* wire) { tx_wire_ = wire; }
  // Optional fault injection (src/fault): wedged endpoint CONTROL lines and
  // OS crash windows (RX blackhole while the service stack is down).
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }
  // Per-request span tracing: the NIC stamps admission/dispatch/delivery.
  void set_span_collector(SpanCollector* spans) { spans_ = spans; }
  // OS-side write-through shadow (src/nic/shadow): mirrors every
  // control-plane mutation and dedup transition so the host can rebuild the
  // device after a crash.
  void set_shadow(NicShadow* shadow) { shadow_ = shadow; }

  // -- Crash / recovery (§16) ----------------------------------------------

  // Watchdog probe: a live device answers (true). The probe also performs
  // the lazy crash check against the fault plan, so a crash whose instant
  // has passed is detected here even on an idle machine.
  bool HeartbeatProbe() { return CheckDeviceUp(); }
  bool device_up() const { return device_up_; }
  // Host-driven reset completion: the device is reborn empty (the crash
  // already wiped all volatile state) and grants ramp from grant_reset_cap.
  // The caller (NicRecoveryManager) replays the shadow immediately after.
  void CompleteReset();
  // Shadow replay entry points. Restore* reconstruct control-plane state
  // exactly as the original Allocate* calls built it, without re-recording
  // into the shadow.
  void RestoreEndpoint(uint32_t id, uint32_t service_id, Pid pid,
                       uint64_t code_ptr, uint64_t data_ptr,
                       uint64_t dma_buffer_iova, uint32_t vf = 0);
  void RestoreVf(uint32_t vf, const VfConfig& config);
  void RestoreKernelChannel(uint32_t id);
  void RestoreContinuation(uint32_t id);
  void RestoreAdmission(const AdmissionConfig& admission);
  void RestoreDedupInFlight(uint64_t flow, uint64_t request_id);
  void RestoreDedupCompleted(uint64_t flow, uint64_t request_id,
                             const RpcMessage& response);

  // -- Address layout ------------------------------------------------------

  size_t line_size() const { return interconnect_.config().line_size; }
  // Lines per endpoint: 2 control + aux.
  size_t EndpointStrideLines() const { return 2 + config_.params.aux_lines; }
  LineAddr CtrlAddr(uint32_t endpoint, int parity) const;
  LineAddr AuxAddr(uint32_t endpoint, size_t index) const;
  size_t AuxCapacityBytes() const {
    return config_.params.aux_lines * line_size();
  }

  // -- Host-facing control interface (§5.2) ----------------------------------
  // These model uncached register writes from the kernel/runtime; each call
  // takes effect after one device hop.

  // Carves a virtual function. Control-plane mutation: write-through
  // shadowed so the partition survives a device crash. Returns the VF id
  // (>= 1; VF 0 is the PF and always exists).
  uint32_t CreateVf(VfConfig config);
  size_t NumVfs() const { return vfs_.size(); }  // including the PF slot
  const VfConfig& vf_config(uint32_t vf) const { return vfs_[vf].config; }
  const VfStats& vf_stats(uint32_t vf) const { return vfs_[vf].stats; }

  // Binds a service endpoint. `dma_buffer_iova` is a host buffer (mapped in
  // the IOMMU by the runtime) for large-payload fallback; 0 disables DMA.
  // Returns the endpoint id.
  uint32_t AllocateEndpoint(uint32_t service_id, Pid pid, uint64_t code_ptr,
                            uint64_t data_ptr, uint64_t dma_buffer_iova);

  // Same, but inside a VF's endpoint-table slice; refuses (nullopt) when the
  // VF's slice cap or the global table is exhausted — a tenant cannot grow
  // past its partition, only fail loudly at its own allocation.
  std::optional<uint32_t> AllocateEndpointOnVf(uint32_t vf, uint32_t service_id,
                                               Pid pid, uint64_t code_ptr,
                                               uint64_t data_ptr,
                                               uint64_t dma_buffer_iova);

  // The process entered (left) its user-mode poll loop on this endpoint.
  void ActivateEndpoint(uint32_t endpoint, int core);
  void DeactivateEndpoint(uint32_t endpoint);

  // §5.2: the kernel pushes scheduling-state changes as they happen ("keep
  // the NIC updated with the current OS scheduling state"). This only
  // refreshes which core currently runs the endpoint's thread; loop
  // entry/exit remains explicit via Activate/Deactivate.
  void NoteThreadPlacement(uint32_t endpoint, int core, bool running);
  int EndpointCore(uint32_t endpoint) const { return endpoints_[endpoint].active_core; }

  // Allocates a kernel control channel (id in [0, num_kernel_channels)).
  uint32_t AllocateKernelChannel();

  // §5.2: ask the parked core on this endpoint to return to the OS. If a
  // load is waiting it is answered with RETIRE now; otherwise the next one is.
  void RequestRetire(uint32_t endpoint);

  // Software response path used for cold (kernel-mediated) requests: the
  // runtime marshals in software and hands the payload to the NIC TX engine.
  void SoftwareTransmit(uint64_t request_id, RpcMessage response);

  // -- Continuation endpoints for nested RPCs (§6) ----------------------------

  // Grabs a continuation endpoint from the NIC's free list ("rapidly create a
  // dedicated end-point for an RPC reply"). Returns its id, or nullopt if the
  // pool is exhausted. The caller parks on CtrlAddr(id, 0) for the reply.
  std::optional<uint32_t> AllocateContinuation();
  void FreeContinuation(uint32_t endpoint);

  // Sends a nested RPC request whose reply is routed to `continuation`.
  // Requests addressed at this machine (dst_ip == 0 or own_ip) hairpin
  // through the RX pipeline; others go out on the wire.
  void ClientTransmit(uint32_t continuation, uint32_t dst_ip, uint16_t dst_port,
                      RpcMessage request);

  // -- OS-side hooks -----------------------------------------------------------

  // Invoked (as a model of an interrupt to the OS) when a cold request is
  // queued and no kernel channel is armed.
  Callback on_need_dispatcher;
  // Observation hooks for latency tracking.
  Function<void(const Packet&)> on_wire_rx;
  Function<void(const Packet&)> on_wire_tx;

  // -- Interfaces ---------------------------------------------------------------

  void ReceivePacket(Packet packet) override;  // wire RX

  void OnHomeRead(AgentId requester, LineAddr addr, bool exclusive, FillFn fill) override;
  void OnHomeWriteBack(AgentId from, LineAddr addr, LineData data) override;
  void OnHomeUncachedWrite(AgentId from, LineAddr addr, size_t offset,
                           std::vector<uint8_t> data) override;

  // -- Introspection -------------------------------------------------------------

  const Stats& stats() const { return stats_; }
  // Per-endpoint shed counters (satellite of the overload work: tail drops
  // must be attributable, not silent).
  struct EndpointSheds {
    uint64_t queue = 0;
    uint64_t quota = 0;
    uint64_t sojourn = 0;
    uint64_t vf_quota = 0;
  };
  EndpointSheds endpoint_sheds(uint32_t endpoint) const;
  // Event trace ring (§6: tracing/statistics integration).
  TraceRing& trace() { return trace_; }
  // Instantaneous queue depth of an endpoint (NIC-side pending requests).
  size_t QueueDepth(uint32_t endpoint) const;
  // Policy-aware backlog behind this endpoint: its private queue plus the
  // service's central queue (c-FCFS / JBSQ). This is the signal the scale
  // governor consumes — under a central discipline an endpoint's private
  // queue is empty by design, yet the core is anything but idle.
  size_t DispatchBacklog(uint32_t endpoint) const;
  // Aggregate backlog of a whole service: every member endpoint's private
  // queue plus the central queue, counted once. The cluster least-loaded
  // probe exports this (plus the cold queue) as the machine's depth.
  size_t ServiceBacklog(uint32_t service_id) const;
  // Depth of the service's central queue alone (0 for per-endpoint
  // disciplines, which never populate it).
  size_t CentralQueueDepth(uint32_t service_id) const;
  // Resolved discipline for a service (ServiceDef wins, then the owning
  // VF's default, then legacy).
  DispatchPolicyConfig ServicePolicy(uint32_t service_id);
  // Per-policy counters summed over the services running each discipline,
  // exported as dispatch/<policy>/* (only disciplines with traffic appear).
  std::vector<std::pair<DispatchPolicyKind, DispatchPolicyStats>>
  PolicyStatsSnapshot() const;
  // Per-core occupancy (§18 satellite): dispatches delivered to the core,
  // handler-busy nanoseconds, and the instantaneous depth of the private
  // queues owned by endpoints the core is polling. Keyed by core id;
  // ordered, so metric export is deterministic.
  struct CoreOccupancy {
    uint64_t dispatches = 0;
    Duration busy_time = 0;  // delivered-to-collected, simulated picoseconds
    size_t queue_depth = 0;
  };
  std::map<int, CoreOccupancy> CoreOccupancySnapshot() const;
  // EWMA arrival rate (requests/s) per endpoint, for the scaling policy.
  double ArrivalRate(uint32_t endpoint) const;
  size_t ColdQueueDepth() const { return cold_queue_.size(); }
  bool EndpointActive(uint32_t endpoint) const;
  // NIC-maintained per-endpoint end-system latency (empty histogram until
  // the endpoint served a request).
  const Histogram& EndpointLatency(uint32_t endpoint);
  // Human-readable operational snapshot (§6's debugging integration): one
  // line per in-use endpoint with state, queue depth, arrival rate, and
  // latency summary, plus the global counters.
  std::string DebugReport();

 private:
  struct PreparedRequest {
    uint32_t endpoint = 0;
    uint32_t service_id = 0;
    uint16_t method_id = 0;
    uint64_t request_id = 0;
    std::vector<uint8_t> args;  // marshalled & NIC-validated argument bytes
    // Response addressing.
    EthernetHeader eth;
    Ipv4Header ip;
    UdpHeader udp;
    SimTime wire_arrival = 0;
  };

  struct WaitingLoad {
    FillFn fill;
    AgentId requester = kNoAgent;
    int parity = 0;
    EventId tryagain_event = kInvalidEventId;
  };

  struct OutstandingRequest {
    int parity = 0;  // line holding the delivered request / awaited response
    PreparedRequest request;
    // Core-occupancy accounting (§18): who got the dispatch and when, so
    // response collection can credit the busy interval to the right core.
    SimTime delivered_at = 0;
    int core = -1;
  };

  struct Endpoint {
    bool in_use = false;
    bool is_kernel = false;
    bool is_continuation = false;
    uint32_t id = 0;
    uint32_t service_id = 0;
    uint32_t vf = 0;  // owning virtual function (0 = PF)
    Pid pid = kNoPid;
    uint64_t code_ptr = 0;
    uint64_t data_ptr = 0;
    uint64_t dma_buffer_iova = 0;
    bool active = false;           // a core is in (or entering) the user loop
    int active_core = -1;
    bool cold_dispatch_inflight = false;
    bool retire_requested = false;
    std::optional<WaitingLoad> waiting;
    std::optional<OutstandingRequest> outstanding;
    std::deque<PreparedRequest> pending;
    // Graceful degradation (§5.1 fallout): consecutive TRYAGAINs fired while
    // work was pending mean the hot path is not making progress (a wedged
    // CONTROL line); past the threshold the endpoint is demoted to the cold
    // kernel channel for a backoff window instead of stalling the core.
    uint32_t tryagain_streak = 0;
    SimTime degraded_until = 0;
    // Load statistics (§5.2): EWMA of arrival rate.
    Ewma arrival_rate{0.2};
    SimTime last_arrival = 0;
    uint64_t arrivals = 0;
    // Per-endpoint end-system latency (§6 statistics): wire arrival to
    // response transmission, kept by the NIC itself. Lazily allocated.
    std::unique_ptr<Histogram> latency;
    // Overload control: CoDel-style gate over this endpoint's pending queue,
    // and shed attribution.
    SojournGate sojourn_gate;
    uint64_t shed_queue = 0;
    uint64_t shed_quota = 0;
    uint64_t shed_sojourn = 0;
    uint64_t shed_vf_quota = 0;
  };

  // Per-VF runtime state. The config is control-plane (shadowed, replayed);
  // the quota bucket and stats are volatile and die with the firmware.
  struct VfState {
    VfConfig config;
    std::optional<TokenBucket> quota;  // built from config.admission
    VfStats stats;
  };

  // Per-service dispatch-discipline state (§18). The config is *derived*
  // volatile state: it is re-resolved from the OS's ServiceDef / VfConfig
  // (both of which survive a crash) on first use, so CrashNow only has to
  // wipe the queue contents. Counters persist across resets like stats_.
  struct DispatchGroup {
    DispatchPolicyConfig config;
    std::deque<PreparedRequest> central;  // c-FCFS / JBSQ shared queue
    SojournGate sojourn;                  // CoDel gate over `central`
    DispatchPolicyStats stats;
  };

  // Address decode.
  struct LineRole {
    Endpoint* endpoint = nullptr;
    bool is_ctrl = false;
    int parity = 0;      // for ctrl lines
    size_t aux_index = 0;  // for aux lines
  };
  LineRole Decode(LineAddr addr);
  LineData& StoredLine(LineAddr addr);

  void HandleCtrlPoll(Endpoint& ep, int parity, AgentId requester, FillFn fill);
  void DeliverToWaiting(Endpoint& ep, PreparedRequest request);
  void DeliverToKernelChannel(Endpoint& channel, PreparedRequest request);
  void FillWaiting(Endpoint& ep, LineKind kind);  // TRYAGAIN / RETIRE
  void ArmTryagain(Endpoint& ep);
  void CollectResponse(Endpoint& ep, OutstandingRequest outstanding);
  void TransmitResponse(const PreparedRequest& meta, RpcMessage response);
  // Demotes a non-progressing endpoint to the cold path for a backoff window
  // and drains its NIC-side backlog through the kernel channels.
  void DegradeEndpoint(Endpoint& ep);
  void DispatchPrepared(PreparedRequest request);
  void RouteCold(PreparedRequest request);
  // Sheds `request` with a NIC-generated kOverloaded reply: bumps the global
  // and per-endpoint counters and emits exactly one kDrop trace entry
  // (a = endpoint, b = reason) before handing off to TransmitResponse (which
  // aborts the dedup entry so a retransmit may run later).
  void Shed(Endpoint& ep, const PreparedRequest& request, ShedReason reason);
  // True when any admission gate applies to this endpoint: the device-wide
  // config, or the owning VF's own AdmissionConfig.
  bool AdmissionActive(const Endpoint& ep) const;
  // Tightest queue-depth bound over `base`: device-wide admission limit,
  // then the owning VF's limit.
  size_t EffectiveDepthLimit(const Endpoint& ep, size_t base) const;
  // Admission policy: per-VF tenant quota first (the outer trust boundary),
  // then per-service quota, then the sojourn gate over the queue this
  // request would join (endpoint pending queue, or the shared cold queue
  // when `cold`). kNone = admit.
  ShedReason AdmissionCheck(Endpoint& ep, bool cold);
  // The VF tenant bucket alone. Unlike the overload gates, this is a rate
  // contract: it also meters the hot path, where a parked core would
  // otherwise let a surging tenant dispatch for free. kNone = admit.
  ShedReason VfQuotaCheck(Endpoint& ep);
  // Dedup namespace key: the owning VF id folded into the high bits of the
  // 48-bit (src ip, src port) flow key, so tenants can never collide.
  uint64_t VfFlowKey(uint32_t endpoint, uint32_t src_ip,
                     uint16_t src_port) const;
  // Demux: choose which of a service's endpoints receives this request.
  // Inside a VF (slice endpoints share one vf id per service) the Toeplitz
  // hash of the 4-tuple picks the core, keeping flow affinity; the PF keeps
  // the legacy stalled-core-first heuristic. d-FCFS forces the pure hash
  // (no migration); central disciplines also hash, but only for arrival
  // attribution — the real placement happens at dispatch time.
  uint32_t PickEndpoint(const std::vector<uint32_t>& candidates,
                        const Ipv4Header& ip, const UdpHeader& udp);
  // -- Dispatch disciplines (§18) ------------------------------------------
  // Lazily resolves the group for ep's service: ServiceDef.dispatch wins,
  // then the owning VF's default, then legacy.
  DispatchGroup& EnsureGroup(const Endpoint& ep);
  // A discipline that routes through the central queue.
  static bool IsCentral(const DispatchPolicyConfig& config) {
    return config.kind == DispatchPolicyKind::kCFcfs ||
           config.kind == DispatchPolicyKind::kJbsq;
  }
  // All service endpoints sharing ep's service (the demux candidates).
  const std::vector<uint32_t>& GroupMembers(const Endpoint& ep);
  // Requests resident at an endpoint's core: in-flight + private queue.
  static size_t Resident(const Endpoint& ep) {
    return (ep.outstanding.has_value() ? 1 : 0) + ep.pending.size();
  }
  // True when the endpoint can make forward progress on new work.
  bool EndpointUsable(const Endpoint& ep) const;
  // Central-queue admission: VF quota, service quota, then the group's
  // sojourn gate over the central head. kNone = admit.
  ShedReason CentralAdmissionCheck(Endpoint& ep, DispatchGroup& group);
  // c-FCFS / JBSQ dispatch of a prepared request. Returns false (leaving
  // `request` untouched) when the group has no usable endpoint at all, in
  // which case the caller falls back to the cold path (which recruits a
  // core).
  bool CentralDispatch(Endpoint& ep, DispatchGroup& group,
                       PreparedRequest& request);
  // JBSQ credit refill: move central-queue heads into ep's private queue
  // until the endpoint holds k resident requests.
  void ReplenishJbsq(Endpoint& ep);
  // A retired/deactivated core returns its private queue (its unspent JBSQ
  // credits) to the *front* of the central queue, preserving FCFS order.
  void ReturnLocalQueue(Endpoint& ep);
  // When no group endpoint can serve the central queue (all retired or
  // degraded), its contents drain through the kernel path instead of
  // stranding behind cores that will never poll again.
  void MaybeDrainCentral(uint32_t service_id);
  // Policy-aware backlog test used by the wedge detector: private queue or
  // (for central disciplines) the service's central queue.
  bool HasBacklog(Endpoint& ep);
  // After an endpoint loses its core, queued work must not strand: restart
  // via the cold path.
  void MaybeRestartCold(Endpoint& ep);
  // Writes args into line_store aux lines / DMA buffer; returns the
  // DispatchLine describing the delivery.
  DispatchLine BuildDispatch(const Endpoint& ep, const PreparedRequest& request,
                             bool kernel_channel);
  // Receiver-driven credit (§15): free queue headroom of this endpoint
  // divided across the ECN-capable senders active within
  // grant_sender_window. Prunes stale senders as a side effect.
  uint16_t ComputeGrant(const Endpoint& ep);
  // Lazy crash detection (§16): consults the fault plan and, on the first
  // sighting of a new crash instant, wipes the device. Returns device_up_.
  bool CheckDeviceUp();
  // The firmware died: answer every parked load with TRYAGAIN (the
  // bus-timeout model keeps cores from stranding), then wipe all volatile
  // state — endpoint table, line store, queues, dedup cache, admission
  // buckets, grant state — exactly what the shadow exists to rebuild.
  void CrashNow();

  Simulator& sim_;
  CoherentInterconnect& interconnect_;
  PcieLink& pcie_;
  ServiceRegistry& services_;
  Config config_;
  AgentId home_id_ = kNoAgent;
  LinkDirection* tx_wire_ = nullptr;
  FaultInjector* faults_ = nullptr;
  SpanCollector* spans_ = nullptr;
  NicShadow* shadow_ = nullptr;
  RpcDedupCache dedup_;
  // §16: false between a crash and the host-driven CompleteReset().
  bool device_up_ = true;
  // Grants are clamped to grant_reset_cap until this instant (post-reset
  // ramp); 0 = no ramp active.
  SimTime grant_ramp_until_ = 0;

  std::vector<Endpoint> endpoints_;  // [0, num_kernel_channels) are kernel
  // A service may have several endpoints (one per core it can occupy); the
  // demux stage picks among them per packet.
  std::unordered_map<uint16_t, std::vector<uint32_t>> port_to_endpoints_;
  std::unordered_map<LineAddr, LineData> line_store_;
  std::deque<PreparedRequest> cold_queue_;
  // Cold requests handed to a dispatcher, awaiting SoftwareTransmit.
  std::unordered_map<uint64_t, PreparedRequest> cold_inflight_;
  uint32_t next_service_endpoint_ = 0;
  uint32_t next_kernel_channel_ = 0;
  std::vector<uint32_t> free_continuations_;
  // Overload control: per-service quota buckets (lazily created from
  // config_.admission) and a sojourn gate over the shared cold queue.
  std::unordered_map<uint32_t, TokenBucket> service_quota_;
  SojournGate cold_sojourn_;
  // VF partitions; slot 0 is the PF. Configs are control-plane state
  // (rebuilt by shadow replay); buckets/stats are volatile.
  std::vector<VfState> vfs_;
  // ECN-capable senders (src ip -> last request arrival), the denominator of
  // the per-sender grant.
  std::unordered_map<uint32_t, SimTime> cc_senders_;
  // Dispatch-discipline groups, keyed by service id (§18). Queue contents
  // are volatile (wiped by CrashNow); counters persist like stats_.
  std::unordered_map<uint32_t, DispatchGroup> groups_;
  // Per-core occupancy counters (§18 satellite). Keyed by core id; kept
  // across NIC resets like the other statistics.
  std::map<int, CoreOccupancy> core_stats_;
  Stats stats_;
  TraceRing trace_;
};

}  // namespace lauberhorn

#endif  // SRC_NIC_LAUBERHORN_NIC_H_
