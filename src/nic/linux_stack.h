// The Linux-baseline RPC stack (Fig. 5 left, §2 steps 1-12).
//
// On top of the DMA NIC: MSI-X interrupt -> top half -> softirq (NAPI) thread
// polls the ring, does protocol processing, socket lookup, and wakeup; the
// scheduler places the service process on a core; the worker performs the
// recv syscall + copyout, software unmarshalling, the handler, marshalling,
// and a send syscall back through the driver. Every stage charges the
// corresponding OsCostModel cost on a real simulated core.
#ifndef SRC_NIC_LINUX_STACK_H_
#define SRC_NIC_LINUX_STACK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/net/headers.h"
#include "src/nic/dma_nic.h"
#include "src/os/kernel.h"
#include "src/overload/overload.h"
#include "src/proto/cipher.h"
#include "src/proto/dedup.h"
#include "src/proto/rpc_message.h"
#include "src/proto/service.h"
#include "src/stats/span.h"

namespace lauberhorn {

class LinuxRpcStack {
 public:
  struct Config {
    size_t napi_budget = 64;
    int worker_threads_per_service = 1;
    // Software transport crypto (no NIC offload on the Fig. 1 device).
    bool encrypt_rpcs = false;
    uint64_t crypto_root_key = 0;
    // At-most-once execution: drop/replay duplicate (flow, request id) pairs
    // instead of running the handler twice (software analog of the
    // Lauberhorn NIC's dedup stage, so the comparison is apples-to-apples).
    bool dedup = true;
    size_t dedup_window = 1024;
    // Overload admission at the softirq/socket boundary: the same policy the
    // Lauberhorn NIC runs in hardware, but every shed (decode + reply TX)
    // costs kernel CPU on the softirq core — that cost difference is the
    // point of the three-way comparison.
    AdmissionConfig admission;
  };

  LinuxRpcStack(Simulator& sim, Kernel& kernel, DmaNic& nic, DmaNicDriver& driver,
                Msix& msix, ServiceRegistry& services, Config config);

  // Creates the process, worker thread(s), and socket for a service.
  void RegisterServiceProcess(const ServiceDef& service);

  // Installs MSI-X handlers and creates the per-queue softirq threads.
  void Start();

  // Per-request span tracing: socket enqueue/dequeue and handler start/end.
  void set_span_collector(SpanCollector* spans) { spans_ = spans; }

  uint64_t rpcs_completed() const { return rpcs_completed_; }
  uint64_t bad_requests() const { return bad_requests_; }
  uint64_t dup_drops_in_flight() const { return dup_drops_in_flight_; }
  uint64_t dup_replays() const { return dup_replays_; }
  // Overload sheds by reason, and the kernel CPU charged for shedding
  // (decode + kOverloaded reply TX on the softirq core).
  uint64_t sheds_queue() const { return sheds_queue_; }
  uint64_t sheds_quota() const { return sheds_quota_; }
  uint64_t sheds_sojourn() const { return sheds_sojourn_; }
  uint64_t sheds_total() const {
    return sheds_queue_ + sheds_quota_ + sheds_sojourn_;
  }
  Duration shed_cpu_time() const { return shed_cpu_time_; }

 private:
  struct ServiceState {
    const ServiceDef* def = nullptr;
    Process* process = nullptr;
    std::vector<Thread*> workers;
    Socket* socket = nullptr;
    size_t next_worker = 0;   // round-robin message distribution
    // Overload admission (per service): quota bucket + CoDel gate over the
    // socket receive queue.
    TokenBucket quota;
    SojournGate sojourn;
  };

  void NapiPoll(uint32_t q, Core& core);
  void PostWorkerWork(ServiceState& state);
  void WorkerStep(ServiceState& state, Core& core);
  // Admission decision for one frame headed to `state`'s socket. The signal
  // is per-service (socket depth, quota, socket sojourn); delay upstream of
  // the softirq is bounded by the device ring/FIFO sizes, where a commodity
  // NIC can only tail-drop silently.
  ShedReason AdmissionCheck(ServiceState& state);
  // Builds and transmits the kOverloaded reply for a shed frame; returns the
  // kernel CPU cost to charge on the softirq core.
  Duration ShedFrame(uint32_t q, const ParsedFrame& frame, ShedReason reason);

  Simulator& sim_;
  Kernel& kernel_;
  DmaNic& nic_;
  DmaNicDriver& driver_;
  Msix& msix_;
  ServiceRegistry& services_;
  Config config_;
  SpanCollector* spans_ = nullptr;
  std::vector<Thread*> softirq_threads_;  // one per queue
  std::unordered_map<uint16_t, std::unique_ptr<ServiceState>> by_port_;
  RpcDedupCache dedup_;
  uint64_t rpcs_completed_ = 0;
  uint64_t bad_requests_ = 0;
  uint64_t dup_drops_in_flight_ = 0;
  uint64_t dup_replays_ = 0;
  uint64_t sheds_queue_ = 0;
  uint64_t sheds_quota_ = 0;
  uint64_t sheds_sojourn_ = 0;
  Duration shed_cpu_time_ = 0;
};

}  // namespace lauberhorn

#endif  // SRC_NIC_LINUX_STACK_H_
