// Cache-line message formats of the Lauberhorn NIC<->CPU protocol (Fig. 4).
//
// A DispatchLine is what a stalled load on a CONTROL line returns: everything
// the core needs to run the RPC — code pointer, data pointer, and the
// unmarshalled arguments inline (overflowing into AUX lines, or into host
// memory via DMA for large payloads, §6). A ResponseLine is what the CPU
// writes back into the same line for the NIC to collect with fetch-exclusive.
#ifndef SRC_NIC_DISPATCH_LINE_H_
#define SRC_NIC_DISPATCH_LINE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/coherence/coherence.h"

namespace lauberhorn {

enum class LineKind : uint8_t {
  kEmpty = 0,
  kRpcDispatch = 1,     // request delivered to a user endpoint
  kTryAgain = 2,        // §5.1: deadline-bounded dummy fill; retry the load
  kRetire = 3,          // §5.2: give the core back to the OS
  kKernelDispatch = 4,  // request delivered to a kernel control channel
  kResponse = 5,        // CPU -> NIC: RPC result
};

// Fixed header of a DispatchLine; inline argument bytes follow.
inline constexpr size_t kDispatchHeaderSize = 44;
// Fixed header of a ResponseLine; inline payload bytes follow.
inline constexpr size_t kResponseHeaderSize = 20;

struct DispatchLine {
  LineKind kind = LineKind::kEmpty;
  uint8_t aux_lines = 0;   // AUX lines carrying overflow argument bytes
  uint16_t method_id = 0;
  uint32_t service_id = 0;
  uint64_t request_id = 0;
  uint64_t code_ptr = 0;   // first instruction of the target function (§4)
  uint64_t data_ptr = 0;   // process data pointer, or DMA buffer IOVA
  uint32_t arg_len = 0;    // total marshalled argument bytes
  bool via_dma = false;    // args are in host memory, not inline/AUX
  uint16_t endpoint_id = 0;  // kKernelDispatch: target endpoint
  uint32_t pid = 0;          // kKernelDispatch: target process
  std::vector<uint8_t> inline_args;  // bytes that fit in this line

  // Serializes into exactly `line_size` bytes (inline_args must fit).
  LineData Encode(size_t line_size) const;
  static std::optional<DispatchLine> Decode(const LineData& line);

  static size_t InlineCapacity(size_t line_size) {
    return line_size - kDispatchHeaderSize;
  }
};

struct ResponseLine {
  LineKind kind = LineKind::kResponse;
  uint8_t aux_lines = 0;
  uint16_t status = 0;      // RpcStatus
  uint32_t resp_len = 0;    // total marshalled response bytes
  uint64_t request_id = 0;
  bool via_dma = false;     // payload in host memory
  std::vector<uint8_t> inline_payload;

  LineData Encode(size_t line_size) const;
  static std::optional<ResponseLine> Decode(const LineData& line);

  static size_t InlineCapacity(size_t line_size) {
    return line_size - kResponseHeaderSize;
  }
};

}  // namespace lauberhorn

#endif  // SRC_NIC_DISPATCH_LINE_H_
