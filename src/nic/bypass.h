// Kernel-bypass RPC runtime (DPDK/IX-style): dedicated cores spin-poll RX
// rings in user space and run handlers to completion. Fast when a flow's
// queue maps to a warm core; rigid (static flow->queue->core binding) and
// energy-hungry (busy-wait) otherwise — the trade-off the paper targets.
#ifndef SRC_NIC_BYPASS_H_
#define SRC_NIC_BYPASS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/net/headers.h"
#include "src/nic/dma_nic.h"
#include "src/os/kernel.h"
#include "src/overload/overload.h"
#include "src/proto/cipher.h"
#include "src/proto/dedup.h"
#include "src/proto/rpc_message.h"
#include "src/proto/service.h"
#include "src/stats/span.h"

namespace lauberhorn {

class BypassRuntime {
 public:
  struct Config {
    // Dedicated polling cores; queue q is served by cores[q].
    std::vector<int> cores;
    size_t poll_batch = 32;
    // One empty poll-loop iteration (ring peek + branch).
    Duration poll_iteration = Nanoseconds(25);
    // After this many consecutive empty polls the loop relaxes (pause/tpause
    // style) to the coarser interval below. The core still burns 100% of its
    // cycles — this only coarsens simulation granularity while idle.
    uint64_t idle_backoff_after = 32;
    Duration idle_poll_interval = Nanoseconds(500);
    // Fixed per-batch receive cost (prefetch, ring maintenance).
    Duration rx_batch_fixed = Nanoseconds(100);
    // Userspace per-packet driver + protocol cost (no skb, no syscalls).
    Duration per_packet = Nanoseconds(300);
    // Userspace TX cost per packet.
    Duration tx_per_packet = Nanoseconds(200);
    // Software transport crypto.
    bool encrypt_rpcs = false;
    uint64_t crypto_root_key = 0;
    // At-most-once execution (software analog of the Lauberhorn NIC's dedup
    // stage): duplicates of in-flight requests are dropped, completed ones
    // replay the cached response.
    bool dedup = true;
    size_t dedup_window = 1024;
    // Overload admission in the poll loop. Rings carry no timestamps, so the
    // sojourn check runs on *estimated* delay: ring occupancy times the
    // per-request processing estimate. Sheds cost user CPU on the polling
    // core (cheaper than a full handler pass, but not free like Lauberhorn).
    AdmissionConfig admission;
  };

  BypassRuntime(Simulator& sim, Kernel& kernel, DmaNicDriver& driver,
                ServiceRegistry& services, Config config);

  // Occupies the dedicated cores and starts spinning.
  void Start();
  void Stop() { running_ = false; }

  // Per-request span tracing: the poll loop stamps pickup + handler bounds.
  void set_span_collector(SpanCollector* spans) { spans_ = spans; }

  uint64_t rpcs_completed() const { return rpcs_completed_; }
  uint64_t bad_requests() const { return bad_requests_; }
  uint64_t empty_polls() const { return empty_polls_; }
  uint64_t dup_drops_in_flight() const { return dup_drops_in_flight_; }
  uint64_t dup_replays() const { return dup_replays_; }
  // Overload sheds by reason and the user CPU charged for shedding.
  uint64_t sheds_queue() const { return sheds_queue_; }
  uint64_t sheds_quota() const { return sheds_quota_; }
  uint64_t sheds_sojourn() const { return sheds_sojourn_; }
  uint64_t sheds_total() const {
    return sheds_queue_ + sheds_quota_ + sheds_sojourn_;
  }
  Duration shed_cpu_time() const { return shed_cpu_time_; }

 private:
  void Loop(uint32_t q, Core& core);
  std::vector<uint64_t> empty_streak_;
  void ProcessBatch(uint32_t q, Core& core, std::vector<Packet> packets, size_t index);
  // Admission decision for one decoded request on queue `q`;
  // `batch_remaining` counts the packets already polled but not yet served.
  ShedReason AdmissionCheck(uint32_t q, uint32_t service_id, size_t batch_remaining);

  Simulator& sim_;
  Kernel& kernel_;
  DmaNicDriver& driver_;
  ServiceRegistry& services_;
  Config config_;
  SpanCollector* spans_ = nullptr;
  Process* process_ = nullptr;  // the bypass application owns its data plane
  RpcDedupCache dedup_;
  bool running_ = false;
  uint64_t rpcs_completed_ = 0;
  uint64_t bad_requests_ = 0;
  uint64_t empty_polls_ = 0;
  uint64_t dup_drops_in_flight_ = 0;
  uint64_t dup_replays_ = 0;
  uint64_t sheds_queue_ = 0;
  uint64_t sheds_quota_ = 0;
  uint64_t sheds_sojourn_ = 0;
  Duration shed_cpu_time_ = 0;
  std::unordered_map<uint32_t, TokenBucket> service_quota_;
  std::vector<SojournGate> sojourn_;  // per queue
};

}  // namespace lauberhorn

#endif  // SRC_NIC_BYPASS_H_
