// Toeplitz hash for receive-side scaling (RSS), as specified by the
// Microsoft NDIS RSS documentation and implemented by every SR-IOV NIC the
// smart_nic exemplar models: the hash walks the input bit-serially (MSB
// first) and XORs in a sliding 32-bit window of the 320-bit secret key for
// every set bit. The same (key, 5-tuple) always lands on the same queue, so
// a flow keeps core affinity while distinct flows of one tenant spread
// across that tenant's polling cores.
#ifndef SRC_NIC_TOEPLITZ_H_
#define SRC_NIC_TOEPLITZ_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace lauberhorn {

// 40-byte key: enough for the IPv4 4-tuple input (12 bytes = 96 bits, the
// hash window needs input_bits + 32 <= 320 key bits).
using ToeplitzKey = std::array<uint8_t, 40>;

// The well-known Microsoft default verification key. Real deployments
// randomize the key per device (a predictable key lets a tenant aim flows at
// one victim queue); the simulator keeps the default so hash placement is
// reproducible across runs.
extern const ToeplitzKey kDefaultToeplitzKey;

// Core bit-serial hash over `len` bytes of `data`. `len` must satisfy
// 8 * len + 32 <= 8 * key.size().
uint32_t ToeplitzHash(const ToeplitzKey& key, const uint8_t* data, size_t len);

// IPv4 4-tuple input in the NDIS-specified order and byte layout:
// src_addr | dst_addr | src_port | dst_port, each big-endian. Addresses and
// ports are passed in host order (as carried by Ipv4Header/UdpHeader).
uint32_t ToeplitzHash4Tuple(const ToeplitzKey& key, uint32_t src_ip,
                            uint32_t dst_ip, uint16_t src_port,
                            uint16_t dst_port);

}  // namespace lauberhorn

#endif  // SRC_NIC_TOEPLITZ_H_
