// Named metrics registry (§6). Subsystems export their counters, gauges, and
// latency histograms into one flat namespace ("client/rpcs_sent",
// "overload/sheds_quota", ...) so benches can dump a machine-wide snapshot as
// JSON next to their own results instead of each inventing ad-hoc fields.
//
// The registry is pull-style: nothing on the data path writes here. A bench
// (or test) calls Machine::ExportMetrics() once at the end of a run, which
// copies each subsystem's already-maintained counters in. That keeps the
// hot-path cost of "metrics support" at exactly zero.
#ifndef SRC_STATS_METRICS_H_
#define SRC_STATS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/stats/histogram.h"

namespace lauberhorn {

class MetricsRegistry {
 public:
  void SetCounter(const std::string& name, uint64_t value) {
    counters_[name] = value;
  }
  void AddCounter(const std::string& name, uint64_t delta) {
    counters_[name] += delta;
  }
  void SetGauge(const std::string& name, double value) {
    gauges_[name] = value;
  }
  // Returns the named histogram, creating it if absent; callers Record() or
  // Merge() into it.
  Histogram& Histo(const std::string& name) { return histograms_[name]; }

  uint64_t Counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  double Gauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }
  bool HasCounter(const std::string& name) const {
    return counters_.count(name) != 0;
  }
  bool HasHisto(const std::string& name) const {
    return histograms_.count(name) != 0;
  }

  // std::map keeps iteration (and therefore JSON output) deterministic.
  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  void Clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,mean_ns,
  // p50_ns,p99_ns,p999_ns,min_ns,max_ns,stddev_ns}}}
  std::string ToJson() const;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace lauberhorn

#endif  // SRC_STATS_METRICS_H_
