#include "src/stats/trace.h"

namespace lauberhorn {

std::string ToString(TraceEvent event) {
  switch (event) {
    case TraceEvent::kNone:
      return "none";
    case TraceEvent::kWireRx:
      return "wire-rx";
    case TraceEvent::kWireTx:
      return "wire-tx";
    case TraceEvent::kDispatchHot:
      return "dispatch-hot";
    case TraceEvent::kDispatchQueued:
      return "dispatch-queued";
    case TraceEvent::kDispatchCold:
      return "dispatch-cold";
    case TraceEvent::kTryAgain:
      return "tryagain";
    case TraceEvent::kRetire:
      return "retire";
    case TraceEvent::kLoopEnter:
      return "loop-enter";
    case TraceEvent::kLoopExit:
      return "loop-exit";
    case TraceEvent::kDrop:
      return "drop";
    case TraceEvent::kDegrade:
      return "degrade";
    case TraceEvent::kNicCrash:
      return "nic-crash";
    case TraceEvent::kNicReset:
      return "nic-reset";
  }
  return "?";
}

}  // namespace lauberhorn
