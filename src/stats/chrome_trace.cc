#include "src/stats/chrome_trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lauberhorn {
namespace {

double PsToUs(SimTime ps) { return static_cast<double>(ps) / 1e6; }

void AppendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  // %.9g keeps sub-ns resolution on microsecond timestamps out to ~1 s runs.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::vector<ChromeTraceEvent> SpanTraceEvents(const SpanCollector& spans) {
  std::vector<ChromeTraceEvent> events;
  events.reserve(spans.completed().size() * (1 + kSpanSegmentCount));
  for (const RequestSpan& span : spans.completed()) {
    if (!span.Complete()) {
      continue;
    }
    const uint32_t tid = static_cast<uint32_t>(span.request_id);
    char name[64];
    std::snprintf(name, sizeof(name), "rpc#%llu",
                  static_cast<unsigned long long>(span.request_id));
    char args[128];
    std::snprintf(args, sizeof(args),
                  "{\"dispatch\":\"%s\",\"endpoint\":%u}",
                  ToString(span.dispatch).c_str(), span.endpoint);
    events.push_back(ChromeTraceEvent{
        name, "rpc", 'X', PsToUs(span.At(SpanStage::kWireRx)),
        PsToUs(span.Total()), kChromeTracePidSpans, tid, args});
    for (size_t i = 0; i < kSpanSegmentCount; ++i) {
      const Duration dur = span.Segment(i);
      if (dur < 0) {
        continue;
      }
      events.push_back(ChromeTraceEvent{
          SpanSegmentName(i), "stage", 'X', PsToUs(span.at[i]), PsToUs(dur),
          kChromeTracePidSpans, tid, ""});
    }
  }
  return events;
}

std::vector<ChromeTraceEvent> RingTraceEvents(
    const std::vector<TraceRing::Entry>& entries) {
  std::vector<ChromeTraceEvent> events;
  events.reserve(entries.size());
  for (const TraceRing::Entry& entry : entries) {
    char args[64];
    std::snprintf(args, sizeof(args), "{\"a\":%u,\"b\":%u}", entry.a, entry.b);
    events.push_back(ChromeTraceEvent{ToString(entry.event), "nic", 'i',
                                      PsToUs(entry.at), 0.0,
                                      kChromeTracePidRing, entry.a, args});
  }
  return events;
}

std::string RenderChromeTrace(const std::vector<ChromeTraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const ChromeTraceEvent& e : events) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"name\":\"" + e.name + "\",\"cat\":\"" + e.cat + "\",\"ph\":\"";
    out.push_back(e.ph);
    out += "\",\"ts\":";
    AppendDouble(out, e.ts_us);
    if (e.ph == 'X') {
      out += ",\"dur\":";
      AppendDouble(out, e.dur_us);
    } else if (e.ph == 'i') {
      out += ",\"s\":\"t\"";  // instant scoped to its thread/track
    }
    out += ",\"pid\":" + std::to_string(e.pid);
    out += ",\"tid\":" + std::to_string(e.tid);
    if (!e.args_json.empty()) {
      out += ",\"args\":" + e.args_json;
    }
    out += "}";
  }
  out += "]}";
  return out;
}

bool EventsNestCorrectly(std::vector<ChromeTraceEvent> events) {
  // Group per (pid, tid) track; within a track, sort by start ascending and,
  // on ties, by duration descending so a parent precedes its children. Then
  // a simple stack walk detects partial overlap.
  std::sort(events.begin(), events.end(),
            [](const ChromeTraceEvent& a, const ChromeTraceEvent& b) {
              if (a.pid != b.pid) return a.pid < b.pid;
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.dur_us > b.dur_us;
            });
  // Slack far below the 1 ps sim resolution but far above double rounding
  // error at these magnitudes, so ts+dur vs the next slice's ts never
  // disagrees spuriously.
  constexpr double kEps = 1e-9;
  std::vector<double> ends;  // open slice end times, innermost last
  uint32_t pid = 0, tid = 0;
  bool have_track = false;
  for (const ChromeTraceEvent& e : events) {
    if (e.ph != 'X') {
      continue;
    }
    if (!have_track || e.pid != pid || e.tid != tid) {
      ends.clear();
      pid = e.pid;
      tid = e.tid;
      have_track = true;
    }
    const double start = e.ts_us;
    const double end = e.ts_us + e.dur_us;
    while (!ends.empty() && ends.back() <= start + kEps) {
      ends.pop_back();
    }
    if (!ends.empty() && end > ends.back() + kEps) {
      return false;  // partial overlap with the enclosing slice
    }
    ends.push_back(end);
  }
  return true;
}

}  // namespace lauberhorn
