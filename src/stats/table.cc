#include "src/stats/table.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace lauberhorn {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto append_row = [&](std::string& out, const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  std::string out;
  append_row(out, header_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    append_row(out, row);
  }
  return out;
}

std::string Table::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out += ',';
      }
    }
    out += '\n';
  };
  append_row(header_);
  for (const auto& row : rows_) {
    append_row(row);
  }
  return out;
}

void Table::Print(FILE* out) const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), out);
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

}  // namespace lauberhorn
