// Aligned-table and CSV printing for benchmark output.
//
// Every bench binary reproduces a paper figure/table by printing one of these
// tables: a header row plus data rows, auto-aligned for the terminal, with an
// optional CSV dump for plotting.
#ifndef SRC_STATS_TABLE_H_
#define SRC_STATS_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace lauberhorn {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Adds a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  // Renders with columns padded to the widest cell.
  std::string ToString() const;
  // Comma-separated, one line per row, header first.
  std::string ToCsv() const;

  void Print(FILE* out = stdout) const;

  // Formatting helpers for cells.
  static std::string Num(double v, int precision = 2);
  static std::string Int(int64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lauberhorn

#endif  // SRC_STATS_TABLE_H_
