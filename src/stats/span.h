// Per-request span tracing (§6: "tracing, debugging, and statistics").
//
// A RequestSpan answers "where did this request's nanoseconds go": every
// stack (Lauberhorn NIC + runtime, Linux kernel path, kernel bypass) stamps
// the same eight stages as a request moves from the wire to the handler and
// back to the client, and a SpanCollector stitches the stamps together by
// request id. Stages are deliberately stack-neutral — each stack maps its own
// mechanism onto them (a CONTROL-line fill, a socket dequeue, and a poll-loop
// pickup are all kDelivered) so per-stage budgets compare across stacks,
// which is exactly the attribution nanoPU and Dagger built their evaluations
// around. Collection is pull-free and allocation-light, and every emission
// site is gated on a null check so a machine without a collector pays one
// predictable branch.
#ifndef SRC_STATS_SPAN_H_
#define SRC_STATS_SPAN_H_

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "src/sim/time.h"
#include "src/stats/histogram.h"

namespace lauberhorn {

// Stage timestamps, in request order. Consecutive stages may legitimately
// share a timestamp (e.g. an admission verdict and a hot dispatch decided in
// the same NIC pipeline step), so "monotonic" means non-decreasing.
enum class SpanStage : uint8_t {
  kWireRx = 0,     // request frame arrives at the server NIC
  kAdmitted,       // overload admission said yes (trivially so when disabled)
  kDispatched,     // dispatch decision made (hot/queued/cold or analog)
  kDelivered,      // CONTROL-line fill / socket dequeue / poll-loop pickup
  kHandlerStart,   // service handler begins on a core
  kHandlerEnd,     // handler (and response marshalling) charged
  kWireTx,         // response frame leaves the server NIC
  kClientRx,       // response arrives back at the client
};

inline constexpr size_t kSpanStageCount = 8;
inline constexpr size_t kSpanSegmentCount = kSpanStageCount - 1;

std::string ToString(SpanStage stage);

// Name of the segment between stage i and stage i+1 (e.g. segment 0 is
// "ingest": wire RX to admission verdict).
const char* SpanSegmentName(size_t segment);

// How the dispatch decision routed the request. The first three are the
// Lauberhorn NIC's outcomes; kWorker is the Linux socket->worker handoff and
// kPolled the bypass run-to-completion poll loop.
enum class SpanDispatch : uint8_t {
  kUnknown = 0,
  kHot,     // filled a stalled CONTROL-line load directly
  kQueued,  // NIC-side endpoint queue, delivered on the next poll
  kCold,    // kernel control channel (dispatcher thread)
  kWorker,  // Linux: socket enqueue + worker wakeup
  kPolled,  // bypass: picked from the RX ring by a spinning core
};

std::string ToString(SpanDispatch dispatch);

struct RequestSpan {
  static constexpr SimTime kUnset = -1;

  uint64_t request_id = 0;
  uint32_t endpoint = 0;  // endpoint (Lauberhorn) or queue index (DMA stacks)
  SpanDispatch dispatch = SpanDispatch::kUnknown;
  std::array<SimTime, kSpanStageCount> at{};

  RequestSpan() { at.fill(kUnset); }

  bool Has(SpanStage stage) const {
    return at[static_cast<size_t>(stage)] != kUnset;
  }
  SimTime At(SpanStage stage) const { return at[static_cast<size_t>(stage)]; }

  // All eight stages stamped.
  bool Complete() const {
    for (const SimTime t : at) {
      if (t == kUnset) {
        return false;
      }
    }
    return true;
  }

  // Stamped stages never go backwards in stage order (missing stages are
  // skipped, so a shed request's partial span is still monotonic).
  bool Monotonic() const {
    SimTime last = 0;
    for (const SimTime t : at) {
      if (t == kUnset) {
        continue;
      }
      if (t < last) {
        return false;
      }
      last = t;
    }
    return true;
  }

  // Duration of segment i (stage i -> stage i+1); -1 if either end is unset.
  Duration Segment(size_t segment) const {
    const SimTime from = at[segment];
    const SimTime to = at[segment + 1];
    return (from == kUnset || to == kUnset) ? -1 : to - from;
  }

  // Wire RX to client RX; -1 unless both ends are stamped.
  Duration Total() const {
    return (Has(SpanStage::kWireRx) && Has(SpanStage::kClientRx))
               ? At(SpanStage::kClientRx) - At(SpanStage::kWireRx)
               : -1;
  }
};

// Stitches stage records into RequestSpans by request id. A span opens on
// kWireRx and completes (moving to the bounded `completed` ring) on
// kClientRx. Stage records for ids that are not open — replays of completed
// requests, nested-RPC internals — are counted and dropped rather than
// manufacturing partial spans. First write wins per stage, so a retransmit
// cannot smear an in-flight span.
class SpanCollector {
 public:
  explicit SpanCollector(size_t capacity = 1 << 16) : capacity_(capacity) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void Record(uint64_t request_id, SpanStage stage, SimTime at);
  // Attaches the dispatch outcome and serving endpoint/queue to an open span.
  void Annotate(uint64_t request_id, SpanDispatch dispatch, uint32_t endpoint);

  const std::deque<RequestSpan>& completed() const { return completed_; }
  size_t open_count() const { return open_.size(); }
  // Completed spans evicted because the ring was full.
  uint64_t dropped() const { return dropped_; }
  // Stage records that arrived for an id with no open span.
  uint64_t orphan_marks() const { return orphan_marks_; }
  // kWireRx records for an id that already had an open span (retransmits).
  uint64_t reopened() const { return reopened_; }

  void Clear();

  // Per-segment latency budget over the completed spans (incomplete spans
  // contribute only the segments they have).
  struct StageBudget {
    std::array<Histogram, kSpanSegmentCount> segments;
    Histogram total;
  };
  StageBudget Aggregate() const;

 private:
  size_t capacity_;
  bool enabled_ = true;
  std::unordered_map<uint64_t, RequestSpan> open_;
  std::deque<RequestSpan> completed_;
  uint64_t dropped_ = 0;
  uint64_t orphan_marks_ = 0;
  uint64_t reopened_ = 0;
};

}  // namespace lauberhorn

#endif  // SRC_STATS_SPAN_H_
