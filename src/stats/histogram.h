// Latency statistics for simulation results.
//
// Histogram is an HDR-style log-linear histogram over simulated durations:
// buckets grow geometrically so relative error is bounded (~1/32) across the
// full ns..s range while memory stays small. Percentile queries interpolate
// within a bucket.
#ifndef SRC_STATS_HISTOGRAM_H_
#define SRC_STATS_HISTOGRAM_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace lauberhorn {

namespace histogram_detail {

// Log-linear bucketing: value magnitudes x 64 linear sub-buckets; the top 32
// sub-buckets of each magnitude >= 1 are populated, which bounds relative
// bucket width to 1/32.
inline constexpr int kSubBucketBits = 6;
inline constexpr int kSubBuckets = 1 << kSubBucketBits;

constexpr size_t BucketIndex(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<size_t>(value);
  }
  const int msb = 63 - std::countl_zero(value);
  const int magnitude = msb - kSubBucketBits + 1;
  // Keep the top kSubBucketBits bits: sub in [kSubBuckets/2, kSubBuckets).
  const uint64_t sub = value >> magnitude;
  return static_cast<size_t>(magnitude) * kSubBuckets +
         static_cast<size_t>(sub);
}
// Lower/upper bound of the value range covered by bucket i.
constexpr uint64_t BucketLow(size_t index) {
  const size_t magnitude = index / kSubBuckets;
  const uint64_t sub = index % kSubBuckets;
  return sub << magnitude;
}
constexpr uint64_t BucketHigh(size_t index) {
  const size_t magnitude = index / kSubBuckets;
  return BucketLow(index) + (1ULL << magnitude) - 1;
}

}  // namespace histogram_detail

class Histogram {
 public:
  Histogram();

  void Record(Duration value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  Duration min() const { return count_ == 0 ? 0 : min_; }
  Duration max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;
  double StdDev() const;

  // Returns the value at quantile q in [0, 1]. Empty histogram returns 0.
  Duration Percentile(double q) const;
  Duration P50() const { return Percentile(0.50); }
  Duration P99() const { return Percentile(0.99); }
  Duration P999() const { return Percentile(0.999); }

  // One-line human-readable summary: count/mean/p50/p99/p999/max.
  std::string Summary() const;

  static constexpr size_t BucketIndex(uint64_t value) {
    return histogram_detail::BucketIndex(value);
  }
  static constexpr uint64_t BucketLow(size_t index) {
    return histogram_detail::BucketLow(index);
  }
  static constexpr uint64_t BucketHigh(size_t index) {
    return histogram_detail::BucketHigh(index);
  }

  // Record clamps negatives to 0 and Duration is signed 64-bit, so the
  // largest reachable index comes from INT64_MAX. Sizing the array exactly
  // makes the top bucket a real, addressable bucket (its high bound is
  // INT64_MAX itself) rather than relying on an out-of-range clamp.
  static constexpr size_t kNumBuckets =
      histogram_detail::BucketIndex(static_cast<uint64_t>(INT64_MAX)) + 1;
  static_assert(histogram_detail::BucketHigh(
                    histogram_detail::BucketIndex(
                        static_cast<uint64_t>(INT64_MAX))) ==
                static_cast<uint64_t>(INT64_MAX));

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  Duration min_ = 0;
  Duration max_ = 0;
  // Welford running moments: sum-of-values and sum-of-squares lose a tight
  // distribution's variance to cancellation once samples reach ~1e18 (1 s in
  // picoseconds squared overflows double precision's 53-bit mantissa).
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Exponentially-weighted moving average; used for the NIC's per-service load
// statistics (§5.2).
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void Update(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
    } else {
      value_ = alpha_ * sample + (1.0 - alpha_) * value_;
    }
  }

  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  void Reset() {
    value_ = 0.0;
    initialized_ = false;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace lauberhorn

#endif  // SRC_STATS_HISTOGRAM_H_
