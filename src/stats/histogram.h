// Latency statistics for simulation results.
//
// Histogram is an HDR-style log-linear histogram over simulated durations:
// buckets grow geometrically so relative error is bounded (~1/32) across the
// full ns..s range while memory stays small. Percentile queries interpolate
// within a bucket.
#ifndef SRC_STATS_HISTOGRAM_H_
#define SRC_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace lauberhorn {

class Histogram {
 public:
  Histogram();

  void Record(Duration value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  Duration min() const { return count_ == 0 ? 0 : min_; }
  Duration max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;
  double StdDev() const;

  // Returns the value at quantile q in [0, 1]. Empty histogram returns 0.
  Duration Percentile(double q) const;
  Duration P50() const { return Percentile(0.50); }
  Duration P99() const { return Percentile(0.99); }
  Duration P999() const { return Percentile(0.999); }

  // One-line human-readable summary: count/mean/p50/p99/p999/max.
  std::string Summary() const;

 private:
  // Log-linear bucketing: 64 value magnitudes x 64 linear sub-buckets; the
  // top 32 sub-buckets of each magnitude >= 1 are populated, which bounds
  // relative bucket width to 1/32.
  static constexpr int kSubBucketBits = 6;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  static size_t BucketIndex(uint64_t value);
  // Lower/upper bound of the value range covered by bucket i.
  static uint64_t BucketLow(size_t index);
  static uint64_t BucketHigh(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  Duration min_ = 0;
  Duration max_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

// Exponentially-weighted moving average; used for the NIC's per-service load
// statistics (§5.2).
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void Update(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
    } else {
      value_ = alpha_ * sample + (1.0 - alpha_) * value_;
    }
  }

  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  void Reset() {
    value_ = 0.0;
    initialized_ = false;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace lauberhorn

#endif  // SRC_STATS_HISTOGRAM_H_
