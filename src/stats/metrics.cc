#include "src/stats/metrics.h"

#include <cmath>
#include <cstdio>

namespace lauberhorn {
namespace {

// Metric names are code-controlled identifiers; escape the few characters
// that could still break the document rather than a full JSON string escape.
void AppendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void AppendDouble(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

double ToNs(double ps) { return ps / 1000.0; }

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"";
    AppendEscaped(out, name);
    out += "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"";
    AppendEscaped(out, name);
    out += "\":";
    AppendDouble(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"";
    AppendEscaped(out, name);
    out += "\":{\"count\":" + std::to_string(h.count());
    out += ",\"mean_ns\":";
    AppendDouble(out, ToNs(h.Mean()));
    out += ",\"p50_ns\":";
    AppendDouble(out, ToNs(static_cast<double>(h.P50())));
    out += ",\"p99_ns\":";
    AppendDouble(out, ToNs(static_cast<double>(h.P99())));
    out += ",\"p999_ns\":";
    AppendDouble(out, ToNs(static_cast<double>(h.P999())));
    out += ",\"min_ns\":";
    AppendDouble(out, ToNs(static_cast<double>(h.min())));
    out += ",\"max_ns\":";
    AppendDouble(out, ToNs(static_cast<double>(h.max())));
    out += ",\"stddev_ns\":";
    AppendDouble(out, ToNs(h.StdDev()));
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace lauberhorn
