#include "src/stats/span.h"

namespace lauberhorn {

std::string ToString(SpanStage stage) {
  switch (stage) {
    case SpanStage::kWireRx:
      return "wire_rx";
    case SpanStage::kAdmitted:
      return "admitted";
    case SpanStage::kDispatched:
      return "dispatched";
    case SpanStage::kDelivered:
      return "delivered";
    case SpanStage::kHandlerStart:
      return "handler_start";
    case SpanStage::kHandlerEnd:
      return "handler_end";
    case SpanStage::kWireTx:
      return "wire_tx";
    case SpanStage::kClientRx:
      return "client_rx";
  }
  return "?";
}

const char* SpanSegmentName(size_t segment) {
  static constexpr const char* kNames[kSpanSegmentCount] = {
      "ingest",    // wire_rx -> admitted
      "dispatch",  // admitted -> dispatched
      "deliver",   // dispatched -> delivered
      "sched",     // delivered -> handler_start
      "handler",   // handler_start -> handler_end
      "egress",    // handler_end -> wire_tx
      "return",    // wire_tx -> client_rx
  };
  return segment < kSpanSegmentCount ? kNames[segment] : "?";
}

std::string ToString(SpanDispatch dispatch) {
  switch (dispatch) {
    case SpanDispatch::kUnknown:
      return "unknown";
    case SpanDispatch::kHot:
      return "hot";
    case SpanDispatch::kQueued:
      return "queued";
    case SpanDispatch::kCold:
      return "cold";
    case SpanDispatch::kWorker:
      return "worker";
    case SpanDispatch::kPolled:
      return "polled";
  }
  return "?";
}

void SpanCollector::Record(uint64_t request_id, SpanStage stage, SimTime at) {
  if (!enabled_) {
    return;
  }
  const size_t idx = static_cast<size_t>(stage);
  if (stage == SpanStage::kWireRx) {
    auto [it, inserted] = open_.try_emplace(request_id);
    if (!inserted) {
      // A retransmit of an in-flight request: keep the original timeline.
      ++reopened_;
      return;
    }
    it->second.request_id = request_id;
    it->second.at[idx] = at;
    return;
  }
  auto it = open_.find(request_id);
  if (it == open_.end()) {
    // Replay of an already-completed request, a nested-RPC internal id, or a
    // stage emitted for traffic the span layer never saw arrive.
    ++orphan_marks_;
    return;
  }
  RequestSpan& span = it->second;
  if (span.at[idx] == RequestSpan::kUnset) {
    span.at[idx] = at;
  }
  if (stage == SpanStage::kClientRx) {
    if (capacity_ == 0) {
      ++dropped_;
    } else {
      if (completed_.size() >= capacity_) {
        completed_.pop_front();
        ++dropped_;
      }
      completed_.push_back(span);
    }
    open_.erase(it);
  }
}

void SpanCollector::Annotate(uint64_t request_id, SpanDispatch dispatch,
                             uint32_t endpoint) {
  if (!enabled_) {
    return;
  }
  auto it = open_.find(request_id);
  if (it == open_.end()) {
    ++orphan_marks_;
    return;
  }
  if (it->second.dispatch == SpanDispatch::kUnknown) {
    it->second.dispatch = dispatch;
    it->second.endpoint = endpoint;
  }
}

void SpanCollector::Clear() {
  open_.clear();
  completed_.clear();
  dropped_ = 0;
  orphan_marks_ = 0;
  reopened_ = 0;
}

SpanCollector::StageBudget SpanCollector::Aggregate() const {
  StageBudget budget;
  for (const RequestSpan& span : completed_) {
    for (size_t i = 0; i < kSpanSegmentCount; ++i) {
      const Duration seg = span.Segment(i);
      if (seg >= 0) {
        budget.segments[i].Record(seg);
      }
    }
    const Duration total = span.Total();
    if (total >= 0) {
      budget.total.Record(total);
    }
  }
  return budget;
}

}  // namespace lauberhorn
