#include "src/stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lauberhorn {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

void Histogram::Record(Duration value) {
  if (value < 0) {
    value = 0;
  }
  const auto v = static_cast<uint64_t>(value);
  // BucketIndex(v) < kNumBuckets for every non-negative Duration by
  // construction (see kNumBuckets), so no overflow clamp is needed.
  ++buckets_[BucketIndex(v)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  // Welford's online update: numerically stable for tight distributions at
  // any offset (e.g. 10k samples of 1 s +/- 1 us in picoseconds).
  const double d = static_cast<double>(value) - mean_;
  mean_ += d / static_cast<double>(count_);
  m2_ += d * (static_cast<double>(value) - mean_);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  // Chan et al.'s parallel combination of Welford moments.
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  mean_ += delta * nb / n;
  count_ += other.count_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  mean_ = m2_ = 0.0;
}

double Histogram::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double Histogram::StdDev() const {
  if (count_ == 0) {
    return 0.0;
  }
  // Population standard deviation, matching the pre-Welford behaviour.
  const double var = m2_ / static_cast<double>(count_);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

Duration Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      // Clamp to observed extremes for tighter answers at the tails. The
      // midpoint is computed in uint64 space: the top bucket's bounds sum
      // past INT64_MAX even though each fits individually.
      const uint64_t mid = BucketLow(i) / 2 + BucketHigh(i) / 2;
      return std::clamp(static_cast<Duration>(mid), min_, max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%s p50=%s p99=%s p99.9=%s max=%s",
                static_cast<unsigned long long>(count_),
                FormatDuration(static_cast<Duration>(Mean())).c_str(),
                FormatDuration(P50()).c_str(), FormatDuration(P99()).c_str(),
                FormatDuration(P999()).c_str(), FormatDuration(max()).c_str());
  return buf;
}

}  // namespace lauberhorn
