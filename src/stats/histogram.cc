#include "src/stats/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace lauberhorn {

Histogram::Histogram() : buckets_(64 * kSubBuckets, 0) {}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<size_t>(value);
  }
  const int msb = 63 - std::countl_zero(value);
  const int magnitude = msb - kSubBucketBits + 1;
  // Keep the top kSubBucketBits bits: sub in [kSubBuckets/2, kSubBuckets).
  const uint64_t sub = value >> magnitude;
  return static_cast<size_t>(magnitude) * kSubBuckets + static_cast<size_t>(sub);
}

uint64_t Histogram::BucketLow(size_t index) {
  const size_t magnitude = index / kSubBuckets;
  const uint64_t sub = index % kSubBuckets;
  return sub << magnitude;
}

uint64_t Histogram::BucketHigh(size_t index) {
  const size_t magnitude = index / kSubBuckets;
  return BucketLow(index) + (1ULL << magnitude) - 1;
}

void Histogram::Record(Duration value) {
  if (value < 0) {
    value = 0;
  }
  const auto v = static_cast<uint64_t>(value);
  const size_t index = BucketIndex(v);
  if (index < buckets_.size()) {
    ++buckets_[index];
  } else {
    ++buckets_.back();
  }
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const auto d = static_cast<double>(value);
  sum_ += d;
  sum_sq_ += d * d;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = sum_sq_ = 0.0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::StdDev() const {
  if (count_ == 0) {
    return 0.0;
  }
  const double mean = Mean();
  const double var = sum_sq_ / static_cast<double>(count_) - mean * mean;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

Duration Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      // Clamp to observed extremes for tighter answers at the tails.
      const auto low = static_cast<Duration>(BucketLow(i));
      const auto high = static_cast<Duration>(BucketHigh(i));
      return std::clamp((low + high) / 2, min_, max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%s p50=%s p99=%s p99.9=%s max=%s",
                static_cast<unsigned long long>(count_),
                FormatDuration(static_cast<Duration>(Mean())).c_str(),
                FormatDuration(P50()).c_str(), FormatDuration(P99()).c_str(),
                FormatDuration(P999()).c_str(), FormatDuration(max()).c_str());
  return buf;
}

}  // namespace lauberhorn
