// Bounded in-memory event tracing (§6: "support for tracing, debugging, and
// statistics presents interesting properties for further close integration
// with the OS"). The NIC emits fixed-size records into a ring; tools (tests,
// examples) snapshot and decode them. Overflow drops the oldest entries and
// is counted, never blocking the data path.
#ifndef SRC_STATS_TRACE_H_
#define SRC_STATS_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace lauberhorn {

enum class TraceEvent : uint16_t {
  kNone = 0,
  kWireRx,          // a=endpoint, b=request id (low 32 bits)
  kWireTx,          // a=endpoint, b=request id
  kDispatchHot,     // a=endpoint, b=request id
  kDispatchQueued,  // a=endpoint, b=request id
  kDispatchCold,    // a=endpoint, b=request id
  kTryAgain,        // a=endpoint
  kRetire,          // a=endpoint
  kLoopEnter,       // a=endpoint, b=core
  kLoopExit,        // a=endpoint, b=core
  kDrop,            // a=endpoint, b=reason (ShedReason in src/overload)
  kDegrade,         // a=endpoint, b=tryagain streak at demotion
  kNicCrash,        // whole-NIC firmware crash: volatile state wiped (§16)
  kNicReset,        // host-driven reset completed; shadow replay follows
};

std::string ToString(TraceEvent event);

class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 4096) : capacity_(capacity) {}

  struct Entry {
    SimTime at = 0;
    TraceEvent event = TraceEvent::kNone;
    uint32_t a = 0;
    uint32_t b = 0;
  };

  void Emit(SimTime at, TraceEvent event, uint32_t a = 0, uint32_t b = 0) {
    if (!enabled_) {
      return;
    }
    if (capacity_ == 0) {
      // A zero-capacity ring can hold nothing; count the drop instead of
      // popping from an empty deque.
      ++dropped_;
      return;
    }
    if (entries_.size() >= capacity_) {
      entries_.pop_front();
      ++dropped_;
    }
    entries_.push_back(Entry{at, event, a, b});
  }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  std::vector<Entry> Snapshot() const {
    return std::vector<Entry>(entries_.begin(), entries_.end());
  }
  size_t size() const { return entries_.size(); }
  uint64_t dropped() const { return dropped_; }
  void Clear() {
    entries_.clear();
    dropped_ = 0;
  }

  // Entries for one endpoint, in order.
  std::vector<Entry> ForEndpoint(uint32_t endpoint) const {
    std::vector<Entry> out;
    for (const Entry& entry : entries_) {
      if (entry.a == endpoint) {
        out.push_back(entry);
      }
    }
    return out;
  }

 private:
  size_t capacity_;
  bool enabled_ = true;
  std::deque<Entry> entries_;
  uint64_t dropped_ = 0;
};

}  // namespace lauberhorn

#endif  // SRC_STATS_TRACE_H_
