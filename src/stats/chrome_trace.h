// Chrome trace-event exporter: turns SpanCollector spans and TraceRing
// snapshots into the JSON format Perfetto / chrome://tracing load directly
// ({"traceEvents":[...]} with 'X' complete events and 'i' instants).
//
// Each request becomes one track: pid identifies the source (spans vs ring),
// tid is the low 32 bits of the request id, so concurrent requests never
// share a track and a span's segment slices nest under its whole-request
// slice. Timestamps convert from simulated picoseconds to the format's
// microseconds as doubles, keeping sub-ns resolution.
#ifndef SRC_STATS_CHROME_TRACE_H_
#define SRC_STATS_CHROME_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/stats/span.h"
#include "src/stats/trace.h"

namespace lauberhorn {

struct ChromeTraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';       // 'X' complete (ts+dur) or 'i' instant
  double ts_us = 0.0;  // microseconds since simulation start
  double dur_us = 0.0;
  uint32_t pid = 0;
  uint32_t tid = 0;
  std::string args_json;  // pre-rendered JSON object, or empty
};

inline constexpr uint32_t kChromeTracePidSpans = 1;
inline constexpr uint32_t kChromeTracePidRing = 2;

// One parent slice per span (wire_rx -> client_rx) plus a child slice per
// stamped segment. Incomplete spans are skipped (no parent extent).
std::vector<ChromeTraceEvent> SpanTraceEvents(const SpanCollector& spans);

// Every ring entry as an instant on the endpoint's track.
std::vector<ChromeTraceEvent> RingTraceEvents(
    const std::vector<TraceRing::Entry>& entries);

// Serializes events as {"traceEvents":[...]}.
std::string RenderChromeTrace(const std::vector<ChromeTraceEvent>& events);

// True when, per (pid, tid) track, every 'X' slice either contains or is
// disjoint from every other (no partial overlap) — i.e. the file will render
// as properly nested slices. Used by tests and the BRKDN --trace gate.
bool EventsNestCorrectly(std::vector<ChromeTraceEvent> events);

}  // namespace lauberhorn

#endif  // SRC_STATS_CHROME_TRACE_H_
