// Small-scope specification of the cold-dispatch path (§5.2): cold requests
// queue at the NIC, a dispatcher kernel thread is woken, parks on a kernel
// control channel, handles one request in software, and must re-arm while
// work remains. An early implementation of this repository stranded queued
// requests when the dispatcher could not promote the endpoint to a hot loop
// (the cold_dispatch_inflight flag was never cleared); the buggy variant
// below reproduces that bug class and the checker catches it.
#ifndef SRC_MODEL_COLD_PATH_SPEC_H_
#define SRC_MODEL_COLD_PATH_SPEC_H_

#include <array>
#include <cstdint>

#include "src/model/checker.h"

namespace lauberhorn {

inline constexpr int kColdSpecMaxRequests = 3;

struct ColdState {
  enum Req : uint8_t {
    kNotArrived = 0,
    kQueued,     // in the NIC's cold queue
    kHandling,   // delivered to the dispatcher, response pending
    kResponded,
  };
  enum Dispatcher : uint8_t {
    kIdle = 0,      // not armed; needs a wakeup
    kWaking,        // wakeup in flight (IRQ -> scheduler)
    kParked,        // blocked on its kernel control channel
    kHandling_,     // context-switched into the process, running the handler
  };

  std::array<uint8_t, kColdSpecMaxRequests> req{};
  uint8_t dispatcher = kIdle;
  bool wake_pending = false;  // NIC has signalled on_need_dispatcher

  bool operator==(const ColdState& other) const = default;
};

struct ColdStateHash {
  size_t operator()(const ColdState& s) const {
    uint64_t h = 14695981039346656037ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    for (uint8_t r : s.req) {
      mix(r);
    }
    mix(s.dispatcher);
    mix(s.wake_pending ? 1 : 0);
    return static_cast<size_t>(h);
  }
};

using ColdChecker = ModelChecker<ColdState, ColdStateHash>;

struct ColdSpecConfig {
  int num_requests = kColdSpecMaxRequests;
  // The bug class found during development: after handling a request, the
  // dispatcher fails to re-arm / re-signal although the queue is non-empty.
  bool bug_no_rearm_after_handle = false;
  // The kernel-channel TRYAGAIN races a delivery: the dispatcher yields
  // although the queue is non-empty, and the NIC does not re-signal.
  bool bug_tryagain_misses_queue = false;
};

ColdChecker::SuccessorFn ColdPathSuccessors(ColdSpecConfig config);
std::vector<ColdChecker::NamedInvariant> ColdPathInvariants();
bool ColdPathTerminalOk(const ColdState& state);
bool ColdPathGoal(const ColdState& state);
ColdState ColdPathInitialState(int num_requests = kColdSpecMaxRequests);

}  // namespace lauberhorn

#endif  // SRC_MODEL_COLD_PATH_SPEC_H_
