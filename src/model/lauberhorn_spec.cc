#include "src/model/lauberhorn_spec.h"

#include <algorithm>

namespace lauberhorn {
namespace {

// Marker for a request silently dropped by a (deliberately) buggy variant;
// the conservation invariant rejects it.
constexpr uint8_t kReqLost = 9;

void Push(std::vector<ProtoChecker::Transition>& out, std::string label,
          ProtoState next) {
  out.push_back(ProtoChecker::Transition{std::move(label), next});
}

}  // namespace

ProtoState LauberhornInitialState(int num_requests) {
  ProtoState state;
  for (int i = num_requests; i < kSpecMaxRequests; ++i) {
    state.req[static_cast<size_t>(i)] = ProtoState::kResponded;
  }
  return state;
}

ProtoChecker::SuccessorFn LauberhornSuccessors(SpecConfig config) {
  return [config](const ProtoState& s, std::vector<ProtoChecker::Transition>& out) {
    // -- Packet arrival -----------------------------------------------------
    for (int i = 0; i < config.num_requests; ++i) {
      if (s.req[static_cast<size_t>(i)] != ProtoState::kNotArrived) {
        continue;
      }
      ProtoState n = s;
      if (s.nic_waiting) {
        // Hot path: fill the deferred load directly.
        n.req[static_cast<size_t>(i)] = ProtoState::kDelivered;
        n.outstanding = static_cast<int8_t>(i);
        n.outstanding_parity = s.nic_wait_parity;
        if (!config.bug_deliver_without_load) {
          n.nic_waiting = false;
        }  // bug: forgets to consume the armed load
        n.timer_armed = false;
        n.cpu = ProtoState::kCpuHasRequest;
      } else if (config.bug_drop_arrival_while_busy &&
                 s.cpu == ProtoState::kCpuHasRequest) {
        // Buggy variant: the NIC only queues when a load is armed and loses
        // packets that arrive while the handler is executing.
        n.req[static_cast<size_t>(i)] = kReqLost;
      } else {
        n.req[static_cast<size_t>(i)] = ProtoState::kInNicQueue;
      }
      Push(out, "Arrive(" + std::to_string(i) + ")", n);
    }

    // -- CPU issues the blocking load on its current CONTROL line -----------
    if (s.cpu == ProtoState::kCpuIdle) {
      ProtoState n = s;
      n.cpu = ProtoState::kCpuLoadInFlight;
      Push(out, "CpuIssueLoad(p" + std::to_string(s.cpu_parity) + ")", n);
    }

    // -- NIC observes the load ------------------------------------------------
    if (s.cpu == ProtoState::kCpuLoadInFlight) {
      ProtoState base = s;
      // A load on the other line means the previous response is ready:
      // fetch-exclusive collects and transmits it (atomic here; the fetch
      // targets the line NOT being armed, so the abstraction is sound).
      if (base.outstanding >= 0 && base.outstanding_parity != base.cpu_parity &&
          !config.bug_skip_response_collection) {
        base.req[static_cast<size_t>(base.outstanding)] = ProtoState::kResponded;
        base.outstanding = -1;
      }
      if (base.retire_requested) {
        ProtoState n = base;
        n.cpu = ProtoState::kCpuRetired;
        n.retire_requested = false;
        Push(out, "NicFillRetire", n);
      } else {
        bool delivered_any = false;
        for (int i = 0; i < config.num_requests; ++i) {
          if (base.req[static_cast<size_t>(i)] != ProtoState::kInNicQueue) {
            continue;
          }
          ProtoState n = base;
          n.req[static_cast<size_t>(i)] = ProtoState::kDelivered;
          n.outstanding = static_cast<int8_t>(i);
          n.outstanding_parity = s.cpu_parity;
          n.cpu = ProtoState::kCpuHasRequest;
          Push(out, "NicDeliverQueued(" + std::to_string(i) + ")", n);
          delivered_any = true;
        }
        if (!delivered_any) {
          ProtoState n = base;
          n.cpu = ProtoState::kCpuLoadWaiting;
          n.nic_waiting = true;
          n.nic_wait_parity = s.cpu_parity;
          n.timer_armed = true;
          Push(out, "NicDeferFill", n);
        }
      }
    }

    // -- TRYAGAIN deadline -----------------------------------------------------
    if (s.nic_waiting && s.timer_armed) {
      ProtoState n = s;
      n.nic_waiting = false;
      n.timer_armed = false;
      n.cpu = ProtoState::kCpuIdle;  // the loop re-issues the load (§5.1)
      Push(out, "TryAgainFires", n);
    }

    // -- Handler runs; response written; CPU turns to the other line ---------
    if (s.cpu == ProtoState::kCpuHasRequest) {
      ProtoState n = s;
      n.cpu = ProtoState::kCpuIdle;
      n.cpu_parity ^= 1;
      Push(out, "CpuHandleAndFlip", n);
    }

    // -- OS asks for the core back (§5.2) -------------------------------------
    if (config.model_retire && !s.retire_requested &&
        s.cpu != ProtoState::kCpuRetired) {
      if (s.nic_waiting) {
        // Immediate RETIRE of the armed load.
        ProtoState n = s;
        n.cpu = ProtoState::kCpuRetired;
        n.nic_waiting = false;
        n.timer_armed = false;
        Push(out, "RetireImmediate", n);
      } else {
        ProtoState n = s;
        n.retire_requested = true;
        Push(out, "RetireRequest", n);
      }
    }

    // -- Cold-path rescue: after retirement the kernel channel handles what
    //    remains queued (MaybeRestartCold in the implementation) -------------
    if (s.cpu == ProtoState::kCpuRetired) {
      for (int i = 0; i < config.num_requests; ++i) {
        if (s.req[static_cast<size_t>(i)] == ProtoState::kInNicQueue) {
          ProtoState n = s;
          n.req[static_cast<size_t>(i)] = ProtoState::kResponded;
          Push(out, "ColdRescue(" + std::to_string(i) + ")", n);
        }
      }
    }
  };
}

std::vector<ProtoChecker::NamedInvariant> LauberhornInvariants() {
  std::vector<ProtoChecker::NamedInvariant> invariants;
  invariants.push_back({"SingleDelivery", [](const ProtoState& s) {
    int delivered = 0;
    for (uint8_t r : s.req) {
      delivered += r == ProtoState::kDelivered ? 1 : 0;
    }
    if (delivered > 1) {
      return false;
    }
    if (delivered == 1 && s.outstanding < 0) {
      return false;
    }
    return true;
  }});
  invariants.push_back({"WaitingConsistent", [](const ProtoState& s) {
    return s.nic_waiting == (s.cpu == ProtoState::kCpuLoadWaiting);
  }});
  invariants.push_back({"TimerImpliesWaiting", [](const ProtoState& s) {
    return !s.timer_armed || s.nic_waiting;
  }});
  invariants.push_back({"NoLostRequests", [](const ProtoState& s) {
    for (uint8_t r : s.req) {
      if (r == kReqLost) {
        return false;
      }
    }
    return true;
  }});
  invariants.push_back({"OutstandingValid", [](const ProtoState& s) {
    if (s.outstanding < 0) {
      return true;
    }
    return s.req[static_cast<size_t>(s.outstanding)] == ProtoState::kDelivered;
  }});
  invariants.push_back({"HasRequestImpliesOutstanding", [](const ProtoState& s) {
    if (s.cpu != ProtoState::kCpuHasRequest) {
      return true;
    }
    return s.outstanding >= 0 && s.outstanding_parity == s.cpu_parity;
  }});
  return invariants;
}

bool LauberhornTerminalOk(const ProtoState& state) {
  for (uint8_t r : state.req) {
    if (r != ProtoState::kResponded) {
      return false;
    }
  }
  return state.cpu == ProtoState::kCpuRetired;
}

bool LauberhornGoal(const ProtoState& state) {
  for (uint8_t r : state.req) {
    if (r != ProtoState::kResponded) {
      return false;
    }
  }
  return true;
}

}  // namespace lauberhorn
