// Small-scope specification of the end-to-end reliability layer: a client
// retransmits one request over a lossy, duplicating network; the server runs
// an at-most-once dedup stage (src/proto/dedup.h) in front of the handler.
//
// Checked properties:
//   * AtMostOnce  — the handler never executes more than once, no matter how
//                   the network interleaves losses, duplicates, and
//                   retransmissions (the tentpole invariant of this layer);
//   * goal        — the client can complete (the protocol is live when at
//                   least one copy gets through);
//   * terminal ok — the only quiescent states are "client done" or "client
//                   exhausted its retry budget", with all channels drained.
//
// Two mutations reproduce real bug classes and must be caught by the checker:
//   * bug_forget_completed: the dedup window drops completed entries while
//     retransmits are still possible, so a late duplicate re-executes;
//   * bug_execute_inflight_dup: a duplicate of an in-flight request is
//     admitted instead of dropped (no in-flight tracking).
#ifndef SRC_MODEL_RETRANS_SPEC_H_
#define SRC_MODEL_RETRANS_SPEC_H_

#include <cstdint>

#include "src/model/checker.h"

namespace lauberhorn {

struct RetransState {
  enum Server : uint8_t {
    kIdle = 0,    // request id never seen
    kExecuting,   // admitted, handler running
    kCompleted,   // handler done, response cached for replay
  };

  uint8_t attempts_left = 0;  // client sends remaining (original + retries)
  uint8_t dups_left = 0;      // network duplication budget (bounds the space)
  uint8_t req_in_flight = 0;  // request copies on the wire
  uint8_t resp_in_flight = 0; // response copies on the wire
  uint8_t server = kIdle;
  uint8_t executions = 0;     // times the handler actually ran
  bool client_done = false;

  bool operator==(const RetransState& other) const = default;
};

struct RetransStateHash {
  size_t operator()(const RetransState& s) const {
    uint64_t h = 14695981039346656037ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(s.attempts_left);
    mix(s.dups_left);
    mix(s.req_in_flight);
    mix(s.resp_in_flight);
    mix(s.server);
    mix(s.executions);
    mix(s.client_done ? 1 : 0);
    return static_cast<size_t>(h);
  }
};

using RetransChecker = ModelChecker<RetransState, RetransStateHash>;

struct RetransSpecConfig {
  int max_attempts = 3;    // client retry budget (original + retransmits)
  int dup_budget = 2;      // network may duplicate at most this many times
  int channel_capacity = 3;  // copies simultaneously in flight per direction
  // Mutations (see header comment); the checker must flag both.
  bool bug_forget_completed = false;
  bool bug_execute_inflight_dup = false;
};

RetransState RetransInitialState(const RetransSpecConfig& config);
RetransChecker::SuccessorFn RetransSuccessors(RetransSpecConfig config);
std::vector<RetransChecker::NamedInvariant> RetransInvariants();
bool RetransTerminalOk(const RetransState& state);
bool RetransGoal(const RetransState& state);

}  // namespace lauberhorn

#endif  // SRC_MODEL_RETRANS_SPEC_H_
