#include "src/model/retrans_spec.h"

#include <string>

namespace lauberhorn {
namespace {

void Push(std::vector<RetransChecker::Transition>& out, std::string label,
          RetransState next) {
  out.push_back(RetransChecker::Transition{std::move(label), next});
}

}  // namespace

RetransState RetransInitialState(const RetransSpecConfig& config) {
  RetransState state;
  state.attempts_left = static_cast<uint8_t>(config.max_attempts);
  state.dups_left = static_cast<uint8_t>(config.dup_budget);
  return state;
}

RetransChecker::SuccessorFn RetransSuccessors(RetransSpecConfig config) {
  const auto cap = static_cast<uint8_t>(config.channel_capacity);
  return [config, cap](const RetransState& s,
                       std::vector<RetransChecker::Transition>& out) {
    // -- Client sends (the original, or a retransmit after a timeout) ---------
    if (!s.client_done && s.attempts_left > 0 && s.req_in_flight < cap) {
      RetransState n = s;
      --n.attempts_left;
      ++n.req_in_flight;
      Push(out, "ClientSend", n);
    }

    // -- Network: duplicate or drop a request copy ----------------------------
    if (s.req_in_flight > 0 && s.dups_left > 0 && s.req_in_flight < cap) {
      RetransState n = s;
      --n.dups_left;
      ++n.req_in_flight;
      Push(out, "NetDupReq", n);
    }
    if (s.req_in_flight > 0) {
      RetransState n = s;
      --n.req_in_flight;
      Push(out, "NetDropReq", n);
    }

    // -- Server receives one request copy -------------------------------------
    if (s.req_in_flight > 0) {
      RetransState n = s;
      --n.req_in_flight;
      switch (s.server) {
        case RetransState::kIdle:
          // First sighting: admit and execute.
          n.server = RetransState::kExecuting;
          ++n.executions;
          Push(out, "ServerAdmit", n);
          break;
        case RetransState::kExecuting:
          if (config.bug_execute_inflight_dup) {
            // Mutation: no in-flight tracking — the duplicate runs too.
            ++n.executions;
            Push(out, "BuggyExecInFlightDup", n);
          } else {
            // Duplicate of an executing request: dropped; the original's
            // response will answer it.
            Push(out, "ServerDropInFlightDup", n);
          }
          break;
        case RetransState::kCompleted:
          if (config.bug_forget_completed) {
            // Mutation: the completed entry was evicted — re-execute.
            n.server = RetransState::kExecuting;
            ++n.executions;
            Push(out, "BuggyReExecute", n);
          } else if (s.resp_in_flight < cap) {
            // Replay the cached response without touching the handler.
            ++n.resp_in_flight;
            Push(out, "ServerReplay", n);
          } else {
            Push(out, "ServerReplaySuppressed", n);  // channel full: drop copy
          }
          break;
      }
    }

    // -- Handler finishes; response cached and transmitted --------------------
    if (s.server == RetransState::kExecuting && s.resp_in_flight < cap) {
      RetransState n = s;
      n.server = RetransState::kCompleted;
      ++n.resp_in_flight;
      Push(out, "ExecDone", n);
    }

    // -- Network: duplicate or drop a response copy ---------------------------
    if (s.resp_in_flight > 0 && s.dups_left > 0 && s.resp_in_flight < cap) {
      RetransState n = s;
      --n.dups_left;
      ++n.resp_in_flight;
      Push(out, "NetDupResp", n);
    }
    if (s.resp_in_flight > 0) {
      RetransState n = s;
      --n.resp_in_flight;
      Push(out, "NetDropResp", n);
    }

    // -- Client receives a response (late copies are absorbed) ----------------
    if (s.resp_in_flight > 0) {
      RetransState n = s;
      --n.resp_in_flight;
      n.client_done = true;
      Push(out, s.client_done ? "ClientLateResponse" : "ClientComplete", n);
    }
  };
}

std::vector<RetransChecker::NamedInvariant> RetransInvariants() {
  std::vector<RetransChecker::NamedInvariant> invariants;
  invariants.push_back({"AtMostOnce", [](const RetransState& s) {
    return s.executions <= 1;
  }});
  invariants.push_back({"DoneImpliesExecuted", [](const RetransState& s) {
    // The client only completes off a genuine response, so a done client
    // implies the handler ran (no fabricated responses).
    return !s.client_done || s.executions >= 1;
  }});
  return invariants;
}

bool RetransTerminalOk(const RetransState& state) {
  // Quiescence is legitimate only once the wire is drained and the client is
  // either done or out of retries (a timeout surfaces to the caller).
  return state.req_in_flight == 0 && state.resp_in_flight == 0 &&
         (state.client_done || state.attempts_left == 0);
}

bool RetransGoal(const RetransState& state) { return state.client_done; }

}  // namespace lauberhorn
