#include "src/model/cold_path_spec.h"

#include <string>

namespace lauberhorn {
namespace {

void Push(std::vector<ColdChecker::Transition>& out, std::string label, ColdState next) {
  out.push_back(ColdChecker::Transition{std::move(label), next});
}

bool AnyQueued(const ColdState& s, int n) {
  for (int i = 0; i < n; ++i) {
    if (s.req[static_cast<size_t>(i)] == ColdState::kQueued) {
      return true;
    }
  }
  return false;
}

}  // namespace

ColdState ColdPathInitialState(int num_requests) {
  ColdState state;
  for (int i = num_requests; i < kColdSpecMaxRequests; ++i) {
    state.req[static_cast<size_t>(i)] = ColdState::kResponded;
  }
  return state;
}

ColdChecker::SuccessorFn ColdPathSuccessors(ColdSpecConfig config) {
  return [config](const ColdState& s, std::vector<ColdChecker::Transition>& out) {
    // -- Packet arrival: queue at the NIC, signal the OS if needed ------------
    for (int i = 0; i < config.num_requests; ++i) {
      if (s.req[static_cast<size_t>(i)] != ColdState::kNotArrived) {
        continue;
      }
      ColdState n = s;
      n.req[static_cast<size_t>(i)] = ColdState::kQueued;
      if (s.dispatcher != ColdState::kParked) {
        // A parked dispatcher needs no signal: the queued request is
        // delivered straight to its armed load.
        n.wake_pending = true;
      }
      Push(out, "Arrive(" + std::to_string(i) + ")", n);
    }

    // -- Wakeup delivery: IRQ -> scheduler -> dispatcher runs -----------------
    if (s.wake_pending && s.dispatcher == ColdState::kIdle) {
      ColdState n = s;
      n.wake_pending = false;
      n.dispatcher = ColdState::kWaking;
      Push(out, "WakeupDelivered", n);
    }

    // -- Dispatcher parks on its kernel channel -------------------------------
    if (s.dispatcher == ColdState::kWaking) {
      ColdState n = s;
      n.dispatcher = ColdState::kParked;
      Push(out, "DispatcherParks", n);
    }

    // -- NIC fills the parked load with a queued request ----------------------
    if (s.dispatcher == ColdState::kParked) {
      for (int i = 0; i < config.num_requests; ++i) {
        if (s.req[static_cast<size_t>(i)] != ColdState::kQueued) {
          continue;
        }
        ColdState n = s;
        n.req[static_cast<size_t>(i)] = ColdState::kHandling;
        n.dispatcher = ColdState::kHandling_;
        Push(out, "NicDeliver(" + std::to_string(i) + ")", n);
      }
      // Kernel-channel TRYAGAIN: the dispatcher yields when nothing arrives.
      // In the buggy variant the deadline races a delivery and the parked
      // load is answered with TRYAGAIN despite queued work, with no
      // re-signal.
      if (!AnyQueued(s, config.num_requests)) {
        ColdState n = s;
        n.dispatcher = ColdState::kIdle;
        Push(out, "KernelTryAgain", n);
      } else if (config.bug_tryagain_misses_queue) {
        ColdState n = s;
        n.dispatcher = ColdState::kIdle;
        Push(out, "BuggyTryAgainWithQueue", n);
      }
    }

    // -- Handler completes; response transmitted ------------------------------
    if (s.dispatcher == ColdState::kHandling_) {
      for (int i = 0; i < config.num_requests; ++i) {
        if (s.req[static_cast<size_t>(i)] != ColdState::kHandling) {
          continue;
        }
        ColdState n = s;
        n.req[static_cast<size_t>(i)] = ColdState::kResponded;
        n.dispatcher = ColdState::kIdle;
        if (!config.bug_no_rearm_after_handle && AnyQueued(n, config.num_requests)) {
          // MaybeRestartCold / the policy tick re-signals while work remains.
          n.wake_pending = true;
        }
        Push(out, "HandleDone(" + std::to_string(i) + ")", n);
      }
    }
  };
}

std::vector<ColdChecker::NamedInvariant> ColdPathInvariants() {
  std::vector<ColdChecker::NamedInvariant> invariants;
  invariants.push_back({"SingleHandling", [](const ColdState& s) {
    int handling = 0;
    for (uint8_t r : s.req) {
      handling += r == ColdState::kHandling ? 1 : 0;
    }
    if (handling > 1) {
      return false;
    }
    if (handling == 1 && s.dispatcher != ColdState::kHandling_) {
      return false;
    }
    return true;
  }});
  invariants.push_back({"HandlingImpliesRequest", [](const ColdState& s) {
    if (s.dispatcher != ColdState::kHandling_) {
      return true;
    }
    for (uint8_t r : s.req) {
      if (r == ColdState::kHandling) {
        return true;
      }
    }
    return false;
  }});
  return invariants;
}

bool ColdPathTerminalOk(const ColdState& state) {
  for (uint8_t r : state.req) {
    if (r != ColdState::kResponded) {
      return false;
    }
  }
  return state.dispatcher == ColdState::kIdle && !state.wake_pending;
}

bool ColdPathGoal(const ColdState& state) {
  for (uint8_t r : state.req) {
    if (r != ColdState::kResponded) {
      return false;
    }
  }
  return true;
}

}  // namespace lauberhorn
