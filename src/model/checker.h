// A small explicit-state model checker (the paper verifies the Lauberhorn
// CPU/NIC/coherence interaction with TLA+ and TLC, §6; this is the same class
// of exhaustive small-scope checking, in C++).
//
// The checker enumerates the reachable state space by BFS from an initial
// state through a user-provided successor relation, checking:
//   * safety invariants on every reachable state,
//   * deadlock freedom (every non-terminal state has a successor),
//   * goal reachability (some terminal state satisfies the goal predicate).
// Counterexamples are reported as the action-label trace from the initial
// state (BFS ⇒ shortest).
#ifndef SRC_MODEL_CHECKER_H_
#define SRC_MODEL_CHECKER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace lauberhorn {

template <typename State, typename Hash = std::hash<State>>
class ModelChecker {
 public:
  struct Transition {
    std::string label;
    State next;
  };
  // Appends all enabled transitions of `state` to `out`.
  using SuccessorFn = std::function<void(const State&, std::vector<Transition>&)>;
  using PredicateFn = std::function<bool(const State&)>;

  struct NamedInvariant {
    std::string name;
    PredicateFn holds;
  };

  struct Options {
    uint64_t max_states = 1u << 20;
    // States where having no successor is acceptable.
    PredicateFn is_terminal_ok = nullptr;
    // If set, verify some reachable state satisfies this.
    PredicateFn goal = nullptr;
  };

  struct Result {
    bool ok = true;
    uint64_t states_explored = 0;
    uint64_t transitions = 0;
    bool hit_state_limit = false;
    std::string violation;           // empty if ok
    std::vector<std::string> trace;  // actions from init to the violation
  };

  Result Check(const State& initial, const SuccessorFn& successors,
               const std::vector<NamedInvariant>& invariants, Options options) {
    Result result;
    std::unordered_map<State, std::pair<State, std::string>, Hash> parent;
    std::deque<State> frontier;
    bool goal_found = false;

    auto trace_to = [&](const State& state) {
      std::vector<std::string> trace;
      State cursor = state;
      while (true) {
        auto it = parent.find(cursor);
        if (it == parent.end() || it->second.second.empty()) {
          break;
        }
        trace.push_back(it->second.second);
        cursor = it->second.first;
      }
      std::reverse(trace.begin(), trace.end());
      return trace;
    };
    auto fail = [&](const State& state, std::string why) {
      result.ok = false;
      result.violation = std::move(why);
      result.trace = trace_to(state);
    };

    parent.emplace(initial, std::make_pair(initial, std::string()));
    frontier.push_back(initial);

    std::vector<Transition> next;
    while (!frontier.empty()) {
      const State state = frontier.front();
      frontier.pop_front();
      ++result.states_explored;
      if (result.states_explored > options.max_states) {
        result.hit_state_limit = true;
        fail(state, "state limit exceeded");
        return result;
      }

      for (const auto& invariant : invariants) {
        if (!invariant.holds(state)) {
          fail(state, "invariant violated: " + invariant.name);
          return result;
        }
      }
      if (options.goal && options.goal(state)) {
        goal_found = true;
      }

      next.clear();
      successors(state, next);
      result.transitions += next.size();
      if (next.empty()) {
        if (!options.is_terminal_ok || !options.is_terminal_ok(state)) {
          fail(state, "deadlock: non-terminal state has no successors");
          return result;
        }
        continue;
      }
      for (auto& transition : next) {
        auto [it, inserted] = parent.emplace(
            transition.next, std::make_pair(state, transition.label));
        if (inserted) {
          frontier.push_back(transition.next);
        }
      }
    }

    if (options.goal && !goal_found) {
      result.ok = false;
      result.violation = "goal state unreachable";
    }
    return result;
  }
};

}  // namespace lauberhorn

#endif  // SRC_MODEL_CHECKER_H_
