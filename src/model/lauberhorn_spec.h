// Small-scope specification of the Lauberhorn CONTROL-line protocol (Fig. 4)
// for exhaustive model checking (§6).
//
// The model captures one endpoint: a CPU core alternating blocking loads over
// the two CONTROL lines, and the NIC holding a bounded request queue, a
// deferred fill, the TRYAGAIN timer, and the not-yet-collected response. All
// interleavings of packet arrival, load issue/processing, timer firing,
// handler execution, and retire requests are explored.
#ifndef SRC_MODEL_LAUBERHORN_SPEC_H_
#define SRC_MODEL_LAUBERHORN_SPEC_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/model/checker.h"

namespace lauberhorn {

inline constexpr int kSpecMaxRequests = 3;

struct ProtoState {
  enum Cpu : uint8_t {
    kCpuIdle = 0,       // between loads (about to issue the next one)
    kCpuLoadInFlight,   // load issued, not yet observed by the NIC
    kCpuLoadWaiting,    // NIC is deferring the fill
    kCpuHasRequest,     // fill returned a dispatch; handler runnable
    kCpuRetired,        // loop exited (RETIRE observed)
  };
  enum Req : uint8_t {
    kNotArrived = 0,
    kInNicQueue,
    kDelivered,   // dispatched to the CPU, response not yet on the wire
    kResponded,   // response transmitted
  };

  uint8_t cpu = kCpuIdle;
  uint8_t cpu_parity = 0;  // CONTROL line the next/current load targets
  std::array<uint8_t, kSpecMaxRequests> req{};  // per-request lifecycle
  bool nic_waiting = false;       // NIC holds a deferred fill
  uint8_t nic_wait_parity = 0;
  bool timer_armed = false;       // TRYAGAIN deadline pending
  int8_t outstanding = -1;        // request delivered, response uncollected
  uint8_t outstanding_parity = 0; // line holding that response
  bool retire_requested = false;

  bool operator==(const ProtoState& other) const = default;
};

struct ProtoStateHash {
  size_t operator()(const ProtoState& s) const {
    uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(s.cpu);
    mix(s.cpu_parity);
    for (uint8_t r : s.req) {
      mix(r);
    }
    mix(s.nic_waiting ? 1 : 0);
    mix(s.nic_wait_parity);
    mix(s.timer_armed ? 1 : 0);
    mix(static_cast<uint64_t>(static_cast<int64_t>(s.outstanding)) + 7);
    mix(s.outstanding_parity);
    mix(s.retire_requested ? 1 : 0);
    return static_cast<size_t>(h);
  }
};

using ProtoChecker = ModelChecker<ProtoState, ProtoStateHash>;

struct SpecConfig {
  int num_requests = kSpecMaxRequests;  // arrivals to model (<= kSpecMaxRequests)
  bool model_retire = true;             // include RETIRE actions
  // Fault injections for checker-effectiveness tests:
  bool bug_skip_response_collection = false;  // NIC forgets fetch-exclusive
  bool bug_deliver_without_load = false;      // fill doesn't consume the load
  bool bug_drop_arrival_while_busy = false;   // arrival during handler is lost
};

// The protocol's transition relation under `config`.
ProtoChecker::SuccessorFn LauberhornSuccessors(SpecConfig config);

// Safety invariants of the protocol.
std::vector<ProtoChecker::NamedInvariant> LauberhornInvariants();

// Acceptable terminal states: everything answered, CPU parked or retired.
bool LauberhornTerminalOk(const ProtoState& state);
// Goal: all requests responded.
bool LauberhornGoal(const ProtoState& state);

// Unused request slots (beyond num_requests) start as kResponded so the
// terminal/goal predicates are scope-independent.
ProtoState LauberhornInitialState(int num_requests = kSpecMaxRequests);

}  // namespace lauberhorn

#endif  // SRC_MODEL_LAUBERHORN_SPEC_H_
