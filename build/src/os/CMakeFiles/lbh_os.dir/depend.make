# Empty dependencies file for lbh_os.
# This may be replaced when dependencies are built.
