
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/core.cc" "src/os/CMakeFiles/lbh_os.dir/core.cc.o" "gcc" "src/os/CMakeFiles/lbh_os.dir/core.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/lbh_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/lbh_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/scheduler.cc" "src/os/CMakeFiles/lbh_os.dir/scheduler.cc.o" "gcc" "src/os/CMakeFiles/lbh_os.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lbh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/lbh_coherence.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
