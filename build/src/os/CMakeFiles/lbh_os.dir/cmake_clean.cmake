file(REMOVE_RECURSE
  "CMakeFiles/lbh_os.dir/core.cc.o"
  "CMakeFiles/lbh_os.dir/core.cc.o.d"
  "CMakeFiles/lbh_os.dir/kernel.cc.o"
  "CMakeFiles/lbh_os.dir/kernel.cc.o.d"
  "CMakeFiles/lbh_os.dir/scheduler.cc.o"
  "CMakeFiles/lbh_os.dir/scheduler.cc.o.d"
  "liblbh_os.a"
  "liblbh_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbh_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
