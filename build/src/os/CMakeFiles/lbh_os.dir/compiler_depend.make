# Empty compiler generated dependencies file for lbh_os.
# This may be replaced when dependencies are built.
