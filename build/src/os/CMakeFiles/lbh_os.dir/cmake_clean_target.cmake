file(REMOVE_RECURSE
  "liblbh_os.a"
)
