# Empty dependencies file for lbh_model.
# This may be replaced when dependencies are built.
