file(REMOVE_RECURSE
  "liblbh_model.a"
)
