file(REMOVE_RECURSE
  "CMakeFiles/lbh_model.dir/cold_path_spec.cc.o"
  "CMakeFiles/lbh_model.dir/cold_path_spec.cc.o.d"
  "CMakeFiles/lbh_model.dir/lauberhorn_spec.cc.o"
  "CMakeFiles/lbh_model.dir/lauberhorn_spec.cc.o.d"
  "liblbh_model.a"
  "liblbh_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbh_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
