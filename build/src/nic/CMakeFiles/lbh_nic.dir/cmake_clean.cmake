file(REMOVE_RECURSE
  "CMakeFiles/lbh_nic.dir/bypass.cc.o"
  "CMakeFiles/lbh_nic.dir/bypass.cc.o.d"
  "CMakeFiles/lbh_nic.dir/cost_model.cc.o"
  "CMakeFiles/lbh_nic.dir/cost_model.cc.o.d"
  "CMakeFiles/lbh_nic.dir/dispatch_line.cc.o"
  "CMakeFiles/lbh_nic.dir/dispatch_line.cc.o.d"
  "CMakeFiles/lbh_nic.dir/dma_nic.cc.o"
  "CMakeFiles/lbh_nic.dir/dma_nic.cc.o.d"
  "CMakeFiles/lbh_nic.dir/lauberhorn_nic.cc.o"
  "CMakeFiles/lbh_nic.dir/lauberhorn_nic.cc.o.d"
  "CMakeFiles/lbh_nic.dir/lauberhorn_runtime.cc.o"
  "CMakeFiles/lbh_nic.dir/lauberhorn_runtime.cc.o.d"
  "CMakeFiles/lbh_nic.dir/linux_stack.cc.o"
  "CMakeFiles/lbh_nic.dir/linux_stack.cc.o.d"
  "liblbh_nic.a"
  "liblbh_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbh_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
