# Empty compiler generated dependencies file for lbh_nic.
# This may be replaced when dependencies are built.
