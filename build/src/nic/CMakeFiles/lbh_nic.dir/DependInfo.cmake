
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nic/bypass.cc" "src/nic/CMakeFiles/lbh_nic.dir/bypass.cc.o" "gcc" "src/nic/CMakeFiles/lbh_nic.dir/bypass.cc.o.d"
  "/root/repo/src/nic/cost_model.cc" "src/nic/CMakeFiles/lbh_nic.dir/cost_model.cc.o" "gcc" "src/nic/CMakeFiles/lbh_nic.dir/cost_model.cc.o.d"
  "/root/repo/src/nic/dispatch_line.cc" "src/nic/CMakeFiles/lbh_nic.dir/dispatch_line.cc.o" "gcc" "src/nic/CMakeFiles/lbh_nic.dir/dispatch_line.cc.o.d"
  "/root/repo/src/nic/dma_nic.cc" "src/nic/CMakeFiles/lbh_nic.dir/dma_nic.cc.o" "gcc" "src/nic/CMakeFiles/lbh_nic.dir/dma_nic.cc.o.d"
  "/root/repo/src/nic/lauberhorn_nic.cc" "src/nic/CMakeFiles/lbh_nic.dir/lauberhorn_nic.cc.o" "gcc" "src/nic/CMakeFiles/lbh_nic.dir/lauberhorn_nic.cc.o.d"
  "/root/repo/src/nic/lauberhorn_runtime.cc" "src/nic/CMakeFiles/lbh_nic.dir/lauberhorn_runtime.cc.o" "gcc" "src/nic/CMakeFiles/lbh_nic.dir/lauberhorn_runtime.cc.o.d"
  "/root/repo/src/nic/linux_stack.cc" "src/nic/CMakeFiles/lbh_nic.dir/linux_stack.cc.o" "gcc" "src/nic/CMakeFiles/lbh_nic.dir/linux_stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lbh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lbh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/lbh_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/lbh_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/lbh_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/lbh_os.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lbh_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
