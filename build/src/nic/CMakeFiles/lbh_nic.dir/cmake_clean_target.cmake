file(REMOVE_RECURSE
  "liblbh_nic.a"
)
