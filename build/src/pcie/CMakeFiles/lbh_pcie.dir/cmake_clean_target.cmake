file(REMOVE_RECURSE
  "liblbh_pcie.a"
)
