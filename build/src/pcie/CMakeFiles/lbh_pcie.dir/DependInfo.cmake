
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcie/iommu.cc" "src/pcie/CMakeFiles/lbh_pcie.dir/iommu.cc.o" "gcc" "src/pcie/CMakeFiles/lbh_pcie.dir/iommu.cc.o.d"
  "/root/repo/src/pcie/pcie_link.cc" "src/pcie/CMakeFiles/lbh_pcie.dir/pcie_link.cc.o" "gcc" "src/pcie/CMakeFiles/lbh_pcie.dir/pcie_link.cc.o.d"
  "/root/repo/src/pcie/ring.cc" "src/pcie/CMakeFiles/lbh_pcie.dir/ring.cc.o" "gcc" "src/pcie/CMakeFiles/lbh_pcie.dir/ring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lbh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/lbh_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/lbh_proto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
