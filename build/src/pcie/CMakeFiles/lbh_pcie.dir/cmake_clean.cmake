file(REMOVE_RECURSE
  "CMakeFiles/lbh_pcie.dir/iommu.cc.o"
  "CMakeFiles/lbh_pcie.dir/iommu.cc.o.d"
  "CMakeFiles/lbh_pcie.dir/pcie_link.cc.o"
  "CMakeFiles/lbh_pcie.dir/pcie_link.cc.o.d"
  "CMakeFiles/lbh_pcie.dir/ring.cc.o"
  "CMakeFiles/lbh_pcie.dir/ring.cc.o.d"
  "liblbh_pcie.a"
  "liblbh_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbh_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
