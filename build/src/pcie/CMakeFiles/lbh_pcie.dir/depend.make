# Empty dependencies file for lbh_pcie.
# This may be replaced when dependencies are built.
