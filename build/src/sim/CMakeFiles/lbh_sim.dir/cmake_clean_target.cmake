file(REMOVE_RECURSE
  "liblbh_sim.a"
)
