# Empty dependencies file for lbh_sim.
# This may be replaced when dependencies are built.
