file(REMOVE_RECURSE
  "CMakeFiles/lbh_sim.dir/random.cc.o"
  "CMakeFiles/lbh_sim.dir/random.cc.o.d"
  "CMakeFiles/lbh_sim.dir/simulator.cc.o"
  "CMakeFiles/lbh_sim.dir/simulator.cc.o.d"
  "CMakeFiles/lbh_sim.dir/time.cc.o"
  "CMakeFiles/lbh_sim.dir/time.cc.o.d"
  "liblbh_sim.a"
  "liblbh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
