# Empty dependencies file for lbh_stats.
# This may be replaced when dependencies are built.
