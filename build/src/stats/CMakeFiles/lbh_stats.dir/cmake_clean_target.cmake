file(REMOVE_RECURSE
  "liblbh_stats.a"
)
