file(REMOVE_RECURSE
  "CMakeFiles/lbh_stats.dir/histogram.cc.o"
  "CMakeFiles/lbh_stats.dir/histogram.cc.o.d"
  "CMakeFiles/lbh_stats.dir/table.cc.o"
  "CMakeFiles/lbh_stats.dir/table.cc.o.d"
  "CMakeFiles/lbh_stats.dir/trace.cc.o"
  "CMakeFiles/lbh_stats.dir/trace.cc.o.d"
  "liblbh_stats.a"
  "liblbh_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbh_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
