file(REMOVE_RECURSE
  "liblbh_core.a"
)
