file(REMOVE_RECURSE
  "CMakeFiles/lbh_core.dir/client.cc.o"
  "CMakeFiles/lbh_core.dir/client.cc.o.d"
  "CMakeFiles/lbh_core.dir/machine.cc.o"
  "CMakeFiles/lbh_core.dir/machine.cc.o.d"
  "CMakeFiles/lbh_core.dir/testbed.cc.o"
  "CMakeFiles/lbh_core.dir/testbed.cc.o.d"
  "liblbh_core.a"
  "liblbh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
