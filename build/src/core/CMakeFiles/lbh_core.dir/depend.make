# Empty dependencies file for lbh_core.
# This may be replaced when dependencies are built.
