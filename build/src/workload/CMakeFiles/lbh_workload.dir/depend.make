# Empty dependencies file for lbh_workload.
# This may be replaced when dependencies are built.
