file(REMOVE_RECURSE
  "liblbh_workload.a"
)
