file(REMOVE_RECURSE
  "CMakeFiles/lbh_workload.dir/generator.cc.o"
  "CMakeFiles/lbh_workload.dir/generator.cc.o.d"
  "liblbh_workload.a"
  "liblbh_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbh_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
