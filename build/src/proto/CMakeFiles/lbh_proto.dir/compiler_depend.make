# Empty compiler generated dependencies file for lbh_proto.
# This may be replaced when dependencies are built.
