file(REMOVE_RECURSE
  "liblbh_proto.a"
)
