file(REMOVE_RECURSE
  "CMakeFiles/lbh_proto.dir/cipher.cc.o"
  "CMakeFiles/lbh_proto.dir/cipher.cc.o.d"
  "CMakeFiles/lbh_proto.dir/marshal.cc.o"
  "CMakeFiles/lbh_proto.dir/marshal.cc.o.d"
  "CMakeFiles/lbh_proto.dir/rpc_message.cc.o"
  "CMakeFiles/lbh_proto.dir/rpc_message.cc.o.d"
  "CMakeFiles/lbh_proto.dir/service.cc.o"
  "CMakeFiles/lbh_proto.dir/service.cc.o.d"
  "liblbh_proto.a"
  "liblbh_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbh_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
