
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/cipher.cc" "src/proto/CMakeFiles/lbh_proto.dir/cipher.cc.o" "gcc" "src/proto/CMakeFiles/lbh_proto.dir/cipher.cc.o.d"
  "/root/repo/src/proto/marshal.cc" "src/proto/CMakeFiles/lbh_proto.dir/marshal.cc.o" "gcc" "src/proto/CMakeFiles/lbh_proto.dir/marshal.cc.o.d"
  "/root/repo/src/proto/rpc_message.cc" "src/proto/CMakeFiles/lbh_proto.dir/rpc_message.cc.o" "gcc" "src/proto/CMakeFiles/lbh_proto.dir/rpc_message.cc.o.d"
  "/root/repo/src/proto/service.cc" "src/proto/CMakeFiles/lbh_proto.dir/service.cc.o" "gcc" "src/proto/CMakeFiles/lbh_proto.dir/service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lbh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
