file(REMOVE_RECURSE
  "liblbh_net.a"
)
