file(REMOVE_RECURSE
  "CMakeFiles/lbh_net.dir/headers.cc.o"
  "CMakeFiles/lbh_net.dir/headers.cc.o.d"
  "CMakeFiles/lbh_net.dir/link.cc.o"
  "CMakeFiles/lbh_net.dir/link.cc.o.d"
  "liblbh_net.a"
  "liblbh_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbh_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
