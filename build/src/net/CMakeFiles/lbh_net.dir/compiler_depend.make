# Empty compiler generated dependencies file for lbh_net.
# This may be replaced when dependencies are built.
