file(REMOVE_RECURSE
  "CMakeFiles/lbh_coherence.dir/cache_agent.cc.o"
  "CMakeFiles/lbh_coherence.dir/cache_agent.cc.o.d"
  "CMakeFiles/lbh_coherence.dir/interconnect.cc.o"
  "CMakeFiles/lbh_coherence.dir/interconnect.cc.o.d"
  "CMakeFiles/lbh_coherence.dir/memory_home.cc.o"
  "CMakeFiles/lbh_coherence.dir/memory_home.cc.o.d"
  "liblbh_coherence.a"
  "liblbh_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbh_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
