file(REMOVE_RECURSE
  "liblbh_coherence.a"
)
