# Empty dependencies file for lbh_coherence.
# This may be replaced when dependencies are built.
