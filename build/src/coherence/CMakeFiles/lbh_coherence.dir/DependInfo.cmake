
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/cache_agent.cc" "src/coherence/CMakeFiles/lbh_coherence.dir/cache_agent.cc.o" "gcc" "src/coherence/CMakeFiles/lbh_coherence.dir/cache_agent.cc.o.d"
  "/root/repo/src/coherence/interconnect.cc" "src/coherence/CMakeFiles/lbh_coherence.dir/interconnect.cc.o" "gcc" "src/coherence/CMakeFiles/lbh_coherence.dir/interconnect.cc.o.d"
  "/root/repo/src/coherence/memory_home.cc" "src/coherence/CMakeFiles/lbh_coherence.dir/memory_home.cc.o" "gcc" "src/coherence/CMakeFiles/lbh_coherence.dir/memory_home.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lbh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
