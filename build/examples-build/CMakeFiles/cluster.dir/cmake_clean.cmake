file(REMOVE_RECURSE
  "../examples/cluster"
  "../examples/cluster.pdb"
  "CMakeFiles/cluster.dir/cluster.cpp.o"
  "CMakeFiles/cluster.dir/cluster.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
