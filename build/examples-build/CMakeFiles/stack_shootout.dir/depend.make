# Empty dependencies file for stack_shootout.
# This may be replaced when dependencies are built.
