file(REMOVE_RECURSE
  "../examples/stack_shootout"
  "../examples/stack_shootout.pdb"
  "CMakeFiles/stack_shootout.dir/stack_shootout.cpp.o"
  "CMakeFiles/stack_shootout.dir/stack_shootout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
