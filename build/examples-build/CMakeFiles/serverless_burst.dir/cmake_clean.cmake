file(REMOVE_RECURSE
  "../examples/serverless_burst"
  "../examples/serverless_burst.pdb"
  "CMakeFiles/serverless_burst.dir/serverless_burst.cpp.o"
  "CMakeFiles/serverless_burst.dir/serverless_burst.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
