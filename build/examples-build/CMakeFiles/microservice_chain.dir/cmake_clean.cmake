file(REMOVE_RECURSE
  "../examples/microservice_chain"
  "../examples/microservice_chain.pdb"
  "CMakeFiles/microservice_chain.dir/microservice_chain.cpp.o"
  "CMakeFiles/microservice_chain.dir/microservice_chain.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microservice_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
