
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro.cc" "bench-build/CMakeFiles/micro.dir/micro.cc.o" "gcc" "bench-build/CMakeFiles/micro.dir/micro.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lbh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/lbh_model.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/lbh_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lbh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/lbh_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/lbh_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/lbh_os.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/lbh_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lbh_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lbh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
