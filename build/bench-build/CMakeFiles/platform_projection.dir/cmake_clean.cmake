file(REMOVE_RECURSE
  "../bench/platform_projection"
  "../bench/platform_projection.pdb"
  "CMakeFiles/platform_projection.dir/platform_projection.cc.o"
  "CMakeFiles/platform_projection.dir/platform_projection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
