file(REMOVE_RECURSE
  "../bench/tryagain_energy"
  "../bench/tryagain_energy.pdb"
  "CMakeFiles/tryagain_energy.dir/tryagain_energy.cc.o"
  "CMakeFiles/tryagain_energy.dir/tryagain_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tryagain_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
