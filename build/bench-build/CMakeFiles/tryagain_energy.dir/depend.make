# Empty dependencies file for tryagain_energy.
# This may be replaced when dependencies are built.
