# Empty compiler generated dependencies file for ablation_response_path.
# This may be replaced when dependencies are built.
