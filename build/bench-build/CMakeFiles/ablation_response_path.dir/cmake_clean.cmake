file(REMOVE_RECURSE
  "../bench/ablation_response_path"
  "../bench/ablation_response_path.pdb"
  "CMakeFiles/ablation_response_path.dir/ablation_response_path.cc.o"
  "CMakeFiles/ablation_response_path.dir/ablation_response_path.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_response_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
