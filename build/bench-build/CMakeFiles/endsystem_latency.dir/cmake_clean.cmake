file(REMOVE_RECURSE
  "../bench/endsystem_latency"
  "../bench/endsystem_latency.pdb"
  "CMakeFiles/endsystem_latency.dir/endsystem_latency.cc.o"
  "CMakeFiles/endsystem_latency.dir/endsystem_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endsystem_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
