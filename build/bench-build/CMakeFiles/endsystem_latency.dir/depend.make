# Empty dependencies file for endsystem_latency.
# This may be replaced when dependencies are built.
