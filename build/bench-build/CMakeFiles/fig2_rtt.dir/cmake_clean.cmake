file(REMOVE_RECURSE
  "../bench/fig2_rtt"
  "../bench/fig2_rtt.pdb"
  "CMakeFiles/fig2_rtt.dir/fig2_rtt.cc.o"
  "CMakeFiles/fig2_rtt.dir/fig2_rtt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
