# Empty compiler generated dependencies file for fig2_rtt.
# This may be replaced when dependencies are built.
