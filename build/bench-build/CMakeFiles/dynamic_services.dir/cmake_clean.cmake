file(REMOVE_RECURSE
  "../bench/dynamic_services"
  "../bench/dynamic_services.pdb"
  "CMakeFiles/dynamic_services.dir/dynamic_services.cc.o"
  "CMakeFiles/dynamic_services.dir/dynamic_services.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
