# Empty compiler generated dependencies file for dynamic_services.
# This may be replaced when dependencies are built.
