file(REMOVE_RECURSE
  "../bench/ablation_crypto"
  "../bench/ablation_crypto.pdb"
  "CMakeFiles/ablation_crypto.dir/ablation_crypto.cc.o"
  "CMakeFiles/ablation_crypto.dir/ablation_crypto.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
