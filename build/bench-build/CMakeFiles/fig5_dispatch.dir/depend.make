# Empty dependencies file for fig5_dispatch.
# This may be replaced when dependencies are built.
