file(REMOVE_RECURSE
  "../bench/fig5_dispatch"
  "../bench/fig5_dispatch.pdb"
  "CMakeFiles/fig5_dispatch.dir/fig5_dispatch.cc.o"
  "CMakeFiles/fig5_dispatch.dir/fig5_dispatch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
