file(REMOVE_RECURSE
  "../bench/ablation_tryagain"
  "../bench/ablation_tryagain.pdb"
  "CMakeFiles/ablation_tryagain.dir/ablation_tryagain.cc.o"
  "CMakeFiles/ablation_tryagain.dir/ablation_tryagain.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tryagain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
