# Empty dependencies file for ablation_tryagain.
# This may be replaced when dependencies are built.
