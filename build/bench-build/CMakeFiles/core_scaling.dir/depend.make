# Empty dependencies file for core_scaling.
# This may be replaced when dependencies are built.
