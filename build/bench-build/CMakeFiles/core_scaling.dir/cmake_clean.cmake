file(REMOVE_RECURSE
  "../bench/core_scaling"
  "../bench/core_scaling.pdb"
  "CMakeFiles/core_scaling.dir/core_scaling.cc.o"
  "CMakeFiles/core_scaling.dir/core_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
