# Empty compiler generated dependencies file for msgsize_crossover.
# This may be replaced when dependencies are built.
