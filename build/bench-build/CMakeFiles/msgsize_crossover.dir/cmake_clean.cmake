file(REMOVE_RECURSE
  "../bench/msgsize_crossover"
  "../bench/msgsize_crossover.pdb"
  "CMakeFiles/msgsize_crossover.dir/msgsize_crossover.cc.o"
  "CMakeFiles/msgsize_crossover.dir/msgsize_crossover.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgsize_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
