
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/coherence_fuzz_test.cc" "tests/CMakeFiles/lbh_tests.dir/coherence_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/coherence_fuzz_test.cc.o.d"
  "/root/repo/tests/coherence_test.cc" "tests/CMakeFiles/lbh_tests.dir/coherence_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/coherence_test.cc.o.d"
  "/root/repo/tests/crypto_test.cc" "tests/CMakeFiles/lbh_tests.dir/crypto_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/crypto_test.cc.o.d"
  "/root/repo/tests/edge_test.cc" "tests/CMakeFiles/lbh_tests.dir/edge_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/edge_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/lbh_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/lauberhorn_test.cc" "tests/CMakeFiles/lbh_tests.dir/lauberhorn_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/lauberhorn_test.cc.o.d"
  "/root/repo/tests/linux_stack_test.cc" "tests/CMakeFiles/lbh_tests.dir/linux_stack_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/linux_stack_test.cc.o.d"
  "/root/repo/tests/machine_test.cc" "tests/CMakeFiles/lbh_tests.dir/machine_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/machine_test.cc.o.d"
  "/root/repo/tests/matrix_test.cc" "tests/CMakeFiles/lbh_tests.dir/matrix_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/matrix_test.cc.o.d"
  "/root/repo/tests/model_test.cc" "tests/CMakeFiles/lbh_tests.dir/model_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/model_test.cc.o.d"
  "/root/repo/tests/nested_rpc_test.cc" "tests/CMakeFiles/lbh_tests.dir/nested_rpc_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/nested_rpc_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/lbh_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/nic_test.cc" "tests/CMakeFiles/lbh_tests.dir/nic_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/nic_test.cc.o.d"
  "/root/repo/tests/os_test.cc" "tests/CMakeFiles/lbh_tests.dir/os_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/os_test.cc.o.d"
  "/root/repo/tests/pcie_test.cc" "tests/CMakeFiles/lbh_tests.dir/pcie_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/pcie_test.cc.o.d"
  "/root/repo/tests/proto_test.cc" "tests/CMakeFiles/lbh_tests.dir/proto_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/proto_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/lbh_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/lbh_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/stress_test.cc" "tests/CMakeFiles/lbh_tests.dir/stress_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/stress_test.cc.o.d"
  "/root/repo/tests/testbed_test.cc" "tests/CMakeFiles/lbh_tests.dir/testbed_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/testbed_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/lbh_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/lbh_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lbh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lbh_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lbh_net.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/lbh_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/lbh_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/lbh_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/lbh_os.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/lbh_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lbh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/lbh_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lbh_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
