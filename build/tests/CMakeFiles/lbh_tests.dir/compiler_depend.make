# Empty compiler generated dependencies file for lbh_tests.
# This may be replaced when dependencies are built.
