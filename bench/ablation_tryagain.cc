// ABL-TRYAGAIN — ablation of the §5.1 TRYAGAIN deadline. The paper picks
// 15 ms; shorter deadlines raise the idle interconnect traffic of every
// parked endpoint (two messages per period), longer ones push against the
// platform's coherence bus timeout and slow the cooperative-yield path
// (yield_on_tryagain loops give their core back only at the next deadline).
#include "bench/common.h"

namespace lauberhorn {
namespace {

struct Cell {
  double idle_msgs_per_s = 0;
  Duration yield_latency = 0;
};

Cell Measure(Duration timeout) {
  MachineConfig config;
  config.stack = StackKind::kLauberhorn;
  config.platform = PlatformSpec::EnzianEci();
  config.num_cores = 4;
  LauberhornParams params = config.platform.lauberhorn;
  params.tryagain_timeout = timeout;
  config.lauberhorn_params = params;
  Machine machine(config);
  const ServiceDef& echo = machine.AddService(ServiceRegistry::MakeEchoService(1, 7000));
  machine.Start();
  machine.StartHotLoop(echo);
  machine.sim().RunUntil(Milliseconds(1));

  Cell cell;
  // Idle traffic over 200 ms: only the parked endpoint's TRYAGAIN cycles.
  machine.interconnect().ResetStats();
  const SimTime start = machine.sim().Now();
  machine.sim().RunUntil(start + Milliseconds(200));
  cell.idle_msgs_per_s =
      static_cast<double>(machine.interconnect().stats().TotalMessages()) / 0.2;

  // Cooperative reclaim latency: request a retire while the endpoint is
  // parked mid-deadline; the RETIRE is answered immediately (the NIC holds
  // the load), so what this measures is the full handshake cost.
  const uint32_t ep = machine.EndpointsOf(echo)[0];
  const SimTime retire_at = machine.sim().Now();
  machine.lauberhorn_runtime()->Deschedule(ep);
  while (machine.lauberhorn_runtime()->loops_exited() == 0 &&
         machine.sim().Now() < retire_at + Seconds(1)) {
    machine.sim().RunUntil(machine.sim().Now() + Microseconds(10));
  }
  cell.yield_latency = machine.sim().Now() - retire_at;
  return cell;
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  const bool csv = lauberhorn::BenchArgs::Parse(argc, argv).csv;
  using namespace lauberhorn;
  PrintHeader("ABL-TRYAGAIN", "TRYAGAIN deadline sweep (parked endpoint, idle)");

  Table table({"deadline", "idle device msgs/s", "retire handshake (us)"});
  for (Duration timeout : {Microseconds(100), Milliseconds(1), Milliseconds(5),
                           Milliseconds(15)}) {
    const Cell cell = Measure(timeout);
    table.AddRow({FormatDuration(timeout), Table::Num(cell.idle_msgs_per_s, 0),
                  Us(cell.yield_latency)});
  }
  PrintTable(table, csv);

  std::printf("\nThe paper's 15 ms sits at the quiet end: ~130 msgs/s of idle traffic\n"
              "per parked line, while core reclamation stays fast because RETIRE\n"
              "answers the held load directly rather than waiting for the deadline.\n");
  return 0;
}
