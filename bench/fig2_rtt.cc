// FIG2 — Figure 2 of the paper: 64-byte message round-trip latencies between
// CPU and NIC, comparing the coherent-interconnect path (ECI-style blocking
// load + uncached write) against DMA descriptor rings over PCIe, on an
// Enzian-class machine, a modern PC server, and a CXL.mem-3.0 projection.
//
// No network is involved: this isolates the CPU<->device interaction cost,
// exactly as the figure does. The DMA path is measured both with MSI-X
// signalling (the robust configuration) and with busy polling (its best
// case); the figure's message is that even polled DMA loses to the coherent
// path.
#include <memory>

#include "bench/common.h"
#include "src/coherence/cache_agent.h"
#include "src/coherence/interconnect.h"
#include "src/coherence/memory_home.h"
#include "src/pcie/iommu.h"
#include "src/pcie/pcie_link.h"
#include "src/pcie/ring.h"

namespace lauberhorn {
namespace {

constexpr int kIterations = 10000;
constexpr size_t kMessageBytes = 64;

// A device that answers a deferred control-line read as soon as a 64-byte
// command arrives by uncached write: the minimal coherent echo firmware.
class EciEchoDevice : public HomeAgent {
 public:
  void OnHomeRead(AgentId, LineAddr, bool, FillFn fill) override {
    pending_fill_ = std::move(fill);
    TryRespond();
  }
  void OnHomeWriteBack(AgentId, LineAddr, LineData) override {}
  void OnHomeUncachedWrite(AgentId, LineAddr, size_t, std::vector<uint8_t> data) override {
    command_ = std::move(data);
    TryRespond();
  }

 private:
  void TryRespond() {
    if (!pending_fill_ || command_.empty()) {
      return;
    }
    LineData line(128, 0);
    std::copy(command_.begin(), command_.end(), line.begin());
    auto fill = std::move(pending_fill_);
    pending_fill_ = nullptr;
    command_.clear();
    fill(std::move(line));
  }

  FillFn pending_fill_;
  std::vector<uint8_t> command_;
};

// One coherent ping-pong: issue the (deferred) response load, push the
// command with an uncached write, measure until the fill returns.
Duration MeasureEciRtt(const PlatformSpec& platform) {
  Simulator sim;
  CoherentInterconnect interconnect(sim, platform.coherence);
  EciEchoDevice device;
  const LineAddr base = 0x1'0000'0000;
  interconnect.RegisterHomeAgent(&device, base, 0x1000, /*is_device=*/true);
  CacheAgent cpu(interconnect);

  Histogram rtt;
  const std::vector<uint8_t> command(kMessageBytes, 0xab);
  for (int i = 0; i < kIterations; ++i) {
    const SimTime start = sim.Now();
    bool done = false;
    cpu.LoadThrough(base, kMessageBytes, [&](std::vector<uint8_t>) { done = true; });
    cpu.StoreThrough(base + 128, command);
    sim.RunUntilIdle();
    if (done) {
      rtt.Record(sim.Now() - start);
    }
  }
  return rtt.P50();
}

// One DMA ping-pong through descriptor rings, as a conventional NIC does it:
// host writes command + TX descriptor, rings the doorbell; the device fetches
// the descriptor and payload by DMA, "echoes", DMA-writes the response and a
// completion; the host learns of it via MSI-X or by polling the completion.
Duration MeasureDmaRtt(const PlatformSpec& platform, bool polling) {
  Simulator sim;
  CoherentInterconnect interconnect(sim, platform.coherence);
  MemoryHomeAgent memory(sim, interconnect, 0, 1 << 24);
  Iommu iommu;
  iommu.Map(0, 0, 1 << 24);
  PcieLink pcie(sim, platform.pcie, memory, iommu);
  Msix msix(sim, platform.pcie.msix_latency);

  const uint64_t cmd_desc = 0x1000;
  const uint64_t cmd_buf = 0x2000;
  const uint64_t rsp_buf = 0x3000;
  const uint64_t rsp_desc = 0x4000;

  // Device "firmware": on doorbell, fetch descriptor, fetch payload, echo.
  class Firmware : public MmioDevice {
   public:
    Firmware(Simulator& sim, PcieLink& pcie, Msix& msix, uint64_t cmd_desc,
             uint64_t rsp_buf, uint64_t rsp_desc)
        : sim_(sim), pcie_(pcie), msix_(msix), cmd_desc_(cmd_desc), rsp_buf_(rsp_buf),
          rsp_desc_(rsp_desc) {}
    void OnMmioWrite(uint64_t, uint64_t) override {
      pcie_.DeviceDmaRead(cmd_desc_, kDescriptorSize, [this](std::vector<uint8_t> raw) {
        const Descriptor desc = Descriptor::Decode(raw);
        pcie_.DeviceDmaRead(desc.buffer_iova, desc.length,
                            [this](std::vector<uint8_t> payload) {
                              // Echo the payload back and complete.
                              pcie_.DeviceDmaWrite(rsp_buf_, payload, [this]() {
                                Descriptor done;
                                done.buffer_iova = rsp_buf_;
                                done.length = kMessageBytes;
                                done.flags = kDescDone;
                                pcie_.DeviceDmaWrite(rsp_desc_, done.Encode(),
                                                     [this]() { msix_.Trigger(0); });
                              });
                            });
      });
    }
    uint64_t OnMmioRead(uint64_t) override { return 0; }

   private:
    Simulator& sim_;
    PcieLink& pcie_;
    Msix& msix_;
    uint64_t cmd_desc_, rsp_buf_, rsp_desc_;
  };
  Firmware firmware(sim, pcie, msix, cmd_desc, rsp_buf, rsp_desc);
  pcie.set_device(&firmware);

  Histogram rtt;
  const std::vector<uint8_t> command(kMessageBytes, 0xcd);
  for (int i = 0; i < kIterations; ++i) {
    const SimTime start = sim.Now();
    bool done = false;
    SimTime done_at = 0;

    // Host posts the command.
    memory.WriteBytes(cmd_buf, command);
    Descriptor desc;
    desc.buffer_iova = cmd_buf;
    desc.length = kMessageBytes;
    desc.flags = kDescReady;
    memory.WriteBytes(cmd_desc, desc.Encode());
    memory.WriteBytes(rsp_desc, Descriptor{}.Encode());  // clear completion

    if (polling) {
      // Spin on the completion descriptor in host memory (~per-poll cost of
      // an LLC hit on the polled line). The self-rescheduling closure owns
      // itself via shared_ptr so it outlives this scope.
      auto poll = std::make_shared<std::function<void()>>();
      *poll = [&, poll]() {
        const Descriptor completion =
            Descriptor::Decode(memory.ReadBytes(rsp_desc, kDescriptorSize));
        if ((completion.flags & kDescDone) != 0) {
          done = true;
          done_at = sim.Now();
          return;
        }
        sim.Schedule(Nanoseconds(20), *poll);
      };
      sim.Schedule(Nanoseconds(20), *poll);
    } else {
      msix.SetHandler(0, [&]() {
        done = true;
        done_at = sim.Now();
      });
    }
    pcie.HostMmioWrite(0x0, 1);  // doorbell
    sim.RunUntilIdle();
    if (done) {
      rtt.Record(done_at - start);
    }
  }
  return rtt.P50();
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  const bool csv = lauberhorn::BenchArgs::Parse(argc, argv).csv;
  using namespace lauberhorn;
  PrintHeader("FIG2", "64-byte message round-trip latencies (CPU <-> NIC)");

  Table table({"mechanism", "platform", "RTT p50 (us)", "vs ECI-Enzian"});
  const Duration eci_enzian = MeasureEciRtt(PlatformSpec::EnzianEci());
  auto add = [&](const std::string& mech, const std::string& plat, Duration rtt) {
    table.AddRow({mech, plat, Us(rtt),
                  Table::Num(static_cast<double>(rtt) / static_cast<double>(eci_enzian), 2) + "x"});
  };

  add("coherent load/store (ECI)", "enzian", eci_enzian);
  add("coherent load/store (CXL3 proj.)", "modern-pc",
      MeasureEciRtt(PlatformSpec::Cxl3Projection()));
  add("DMA descriptor ring + MSI-X", "enzian", MeasureDmaRtt(PlatformSpec::EnzianPcie(), false));
  add("DMA descriptor ring + polling", "enzian", MeasureDmaRtt(PlatformSpec::EnzianPcie(), true));
  add("DMA descriptor ring + MSI-X", "modern-pc",
      MeasureDmaRtt(PlatformSpec::ModernPcPcie(), false));
  add("DMA descriptor ring + polling", "modern-pc",
      MeasureDmaRtt(PlatformSpec::ModernPcPcie(), true));
  PrintTable(table, csv);

  std::printf("\nPaper's Figure 2 shape: the coherent-interconnect interaction is several\n"
              "times faster than DMA descriptor rings on the same machine, and remains\n"
              "faster than DMA even on a much newer PCIe server.\n");
  return 0;
}
