// XOVER — §6: "For large messages, the direct, low-latency approach becomes
// less efficient and it is best to revert back to DMA-based transfers ...
// empirically for Enzian this happens at about 4 KiB."
//
// Sweep echo payload size with the large-transfer policy forced to cache-line
// delivery vs forced to DMA, report end-system p50 for each, and locate the
// crossover. The auto policy (what Lauberhorn ships) should track the lower
// envelope.
#include "bench/common.h"

namespace lauberhorn {
namespace {

Duration MeasureAt(size_t payload, LargeTransferPolicy policy) {
  MachineConfig config;
  config.stack = StackKind::kLauberhorn;
  config.platform = PlatformSpec::EnzianEci();
  config.num_cores = 4;
  config.large_policy = policy;
  LauberhornParams params = config.platform.lauberhorn;
  params.aux_lines = 200;  // enough AUX capacity to force cache lines to 16 KiB
  config.lauberhorn_params = params;
  Machine machine(config);
  const ServiceDef& echo = machine.AddService(ServiceRegistry::MakeEchoService(1, 7000));
  machine.Start();
  machine.StartHotLoop(echo);
  machine.sim().RunUntil(Milliseconds(1));
  machine.ResetMeasurement();

  int done = 0;
  std::vector<uint8_t> body(payload, 0x5c);
  for (int i = 0; i < 30; ++i) {
    machine.sim().Schedule(Microseconds(400) * i, [&machine, &echo, &body, &done]() {
      machine.client().Call(echo, 0, std::vector<WireValue>{WireValue::Bytes(body)},
                            [&done](const RpcMessage&, Duration) { ++done; });
    });
  }
  machine.sim().RunUntil(machine.sim().Now() + Milliseconds(100));
  if (done == 0) {
    return 0;
  }
  return machine.end_system_latency().P50();
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  const bool csv = lauberhorn::BenchArgs::Parse(argc, argv).csv;
  using namespace lauberhorn;
  PrintHeader("XOVER", "cache-line protocol vs DMA across payload sizes (Enzian)");

  Table table({"payload (B)", "cacheline p50 (us)", "dma p50 (us)", "auto p50 (us)",
               "winner"});
  size_t crossover = 0;
  bool dma_was_losing = true;
  for (size_t payload : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u, 8192u, 16384u}) {
    const Duration cacheline = MeasureAt(payload, LargeTransferPolicy::kForceCacheline);
    const Duration dma = MeasureAt(payload, LargeTransferPolicy::kForceDma);
    const Duration automatic = MeasureAt(payload, LargeTransferPolicy::kAuto);
    const bool dma_wins = dma < cacheline;
    if (dma_wins && dma_was_losing && crossover == 0 && payload > 64) {
      crossover = payload;
    }
    dma_was_losing = !dma_wins;
    table.AddRow({Table::Int(static_cast<int64_t>(payload)), Us(cacheline), Us(dma),
                  Us(automatic), dma_wins ? "dma" : "cacheline"});
  }
  PrintTable(table, csv);

  if (crossover != 0) {
    std::printf("\ncrossover observed near %zu B (paper: ~4 KiB on Enzian, §6)\n",
                crossover);
  } else {
    std::printf("\nno crossover observed in the swept range\n");
  }
  return 0;
}
