// TAIL — §4's robustness claim: latency-vs-throughput behaviour under
// increasing offered load, per stack (echo, 2 us service time, 8 cores).
#include "bench/common.h"

namespace lauberhorn {
namespace {

struct Cell {
  uint64_t completed = 0;
  Duration p50 = 0;
  Duration p99 = 0;
  Duration p999 = 0;
};

Cell Measure(StackKind stack, double rate_rps) {
  MachineConfig config;
  config.stack = stack;
  config.platform = PlatformSpec::EnzianEci();
  config.num_cores = 8;
  config.nic_queues = stack == StackKind::kBypass ? 8 : 4;
  config.linux_stack.worker_threads_per_service = 4;
  Machine machine(config);
  const ServiceDef& echo =
      machine.AddService(ServiceRegistry::MakeEchoService(1, 7000, Microseconds(2)),
                         /*max_cores=*/stack == StackKind::kLauberhorn ? 6 : 1);
  machine.Start();
  if (stack == StackKind::kLauberhorn) {
    machine.StartHotLoop(echo);
  }
  machine.sim().RunUntil(Milliseconds(1));
  machine.ResetMeasurement();

  OpenLoopGenerator::Config generator_config;
  generator_config.rate_rps = rate_rps;
  generator_config.stop = machine.sim().Now() + Milliseconds(200);
  std::vector<WorkloadTarget> targets = {{&echo, 0, 64, 1.0}};
  OpenLoopGenerator generator(machine.sim(), machine.client(), targets,
                              generator_config);
  generator.Start();
  machine.sim().RunUntil(machine.sim().Now() + Milliseconds(230));

  Cell cell;
  cell.completed = generator.completed();
  cell.p50 = generator.rtt().P50();
  cell.p99 = generator.rtt().P99();
  cell.p999 = generator.rtt().Percentile(0.999);
  return cell;
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  const bool csv = lauberhorn::BenchArgs::Parse(argc, argv).csv;
  using namespace lauberhorn;
  PrintHeader("TAIL", "latency vs offered load (echo, 2us service, 8 cores, 200ms window)");

  Table table({"offered (krps)", "stack", "completed", "p50 (us)", "p99 (us)",
               "p99.9 (us)"});
  for (double rate : {25000.0, 50000.0, 100000.0, 200000.0, 400000.0}) {
    for (StackKind stack :
         {StackKind::kLinux, StackKind::kBypass, StackKind::kLauberhorn}) {
      const Cell cell = Measure(stack, rate);
      table.AddRow({Table::Num(rate / 1000.0, 0), ToString(stack),
                    Table::Int(static_cast<int64_t>(cell.completed)), Us(cell.p50),
                    Us(cell.p99), Us(cell.p999)});
    }
  }
  PrintTable(table, csv);

  std::printf("\nExpected shape: Lauberhorn holds the lowest latency until cores saturate;\n"
              "bypass tracks it closely at low-to-mid load; the kernel stack saturates\n"
              "earliest with the steepest tail growth.\n");
  return 0;
}
