// Shared helpers for the benchmark binaries. Each bench regenerates one
// figure/table of the paper (see DESIGN.md §4 and EXPERIMENTS.md).
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/machine.h"
#include "src/stats/table.h"
#include "src/workload/generator.h"

namespace lauberhorn {

inline std::string Us(Duration d) { return Table::Num(ToMicroseconds(d), 2); }

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("\n=== %s: %s ===\n\n", id.c_str(), title.c_str());
}

// Benches accept --csv to additionally dump machine-readable rows (for
// plotting scripts). Call once from main with argc/argv, then pass the
// result to PrintTable.
inline bool WantCsv(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") {
      return true;
    }
  }
  return false;
}

inline void PrintTable(const Table& table, bool csv) {
  table.Print();
  if (csv) {
    std::printf("\n--- csv ---\n%s", table.ToCsv().c_str());
  }
}

// Builds a machine with one echo service and runs a closed-loop warm-up so
// steady-state measurements exclude cold-start effects.
struct EchoSetup {
  std::unique_ptr<Machine> machine;
  const ServiceDef* echo = nullptr;

  static EchoSetup Make(StackKind stack, PlatformSpec platform, int cores = 8,
                        Duration service_time = Nanoseconds(0), int max_cores = 1) {
    EchoSetup setup;
    MachineConfig config;
    config.stack = stack;
    config.platform = std::move(platform);
    config.num_cores = cores;
    config.nic_queues = stack == StackKind::kBypass ? 4 : 2;
    setup.machine = std::make_unique<Machine>(std::move(config));
    setup.echo = &setup.machine->AddService(
        ServiceRegistry::MakeEchoService(1, 7000, service_time), max_cores);
    setup.machine->Start();
    if (stack == StackKind::kLauberhorn) {
      setup.machine->StartHotLoop(*setup.echo);
    }
    setup.machine->sim().RunUntil(Milliseconds(1));
    return setup;
  }
};

}  // namespace lauberhorn

#endif  // BENCH_COMMON_H_
