// Shared helpers for the benchmark binaries. Each bench regenerates one
// figure/table of the paper (see DESIGN.md §4 and EXPERIMENTS.md).
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/core/machine.h"
#include "src/stats/table.h"
#include "src/workload/generator.h"

namespace lauberhorn {

inline std::string Us(Duration d) { return Table::Num(ToMicroseconds(d), 2); }

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("\n=== %s: %s ===\n\n", id.c_str(), title.c_str());
}

// Uniform command-line surface for every bench binary (EXPERIMENTS.md):
//   --csv        additionally dump machine-readable rows for plotting
//   --trials N   repeat the measurement N times (benches that average/fan out)
//   --seed S     base RNG seed (trial i derives seed S + i)
//   --json PATH  write a machine-readable BENCH_*.json result to PATH
//   --smoke      CI mode: shrink the workload so the bench finishes in seconds
//   --trace PATH write a Chrome trace-event JSON (benches that record spans)
//   --shards N   parallel simulation shards (testbed benches; 1 = sequential)
struct BenchArgs {
  bool csv = false;
  bool smoke = false;
  int trials = 1;
  uint64_t seed = 1;
  int shards = 1;
  std::string json;
  std::string trace;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next_value = [&](const char* flag) -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "missing value for %s\n", flag);
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--csv") {
        args.csv = true;
      } else if (arg == "--smoke") {
        args.smoke = true;
      } else if (arg == "--trials") {
        args.trials = std::atoi(next_value("--trials"));
      } else if (arg == "--seed") {
        args.seed = static_cast<uint64_t>(std::strtoull(next_value("--seed"), nullptr, 10));
      } else if (arg == "--json") {
        args.json = next_value("--json");
      } else if (arg == "--trace") {
        args.trace = next_value("--trace");
      } else if (arg == "--shards") {
        args.shards = std::atoi(next_value("--shards"));
        if (args.shards < 1) {
          std::fprintf(stderr, "--shards must be >= 1\n");
          std::exit(2);
        }
      } else {
        std::fprintf(stderr,
                     "unknown flag %s (supported: --csv --trials N --seed S "
                     "--json PATH --trace PATH --smoke --shards N)\n",
                     arg.c_str());
        std::exit(2);
      }
    }
    return args;
  }
};

// Threads a sharded run actually uses: 1 when shards == 1 (the engine runs
// inline on the caller), else one thread per shard. Warns — once per call —
// when the request oversubscribes the hardware, so reported speedups are
// honest about timeslicing.
inline unsigned ShardThreadsUsed(int shards) {
  const unsigned used = shards <= 1 ? 1u : static_cast<unsigned>(shards);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw != 0 && used > hw) {
    std::fprintf(stderr,
                 "warning: --shards %d exceeds hardware concurrency (%u); "
                 "shard threads will timeslice and speedups will be "
                 "pessimistic\n",
                 shards, hw);
  }
  return used;
}

inline void PrintTable(const Table& table, bool csv) {
  table.Print();
  if (csv) {
    std::printf("\n--- csv ---\n%s", table.ToCsv().c_str());
  }
}

// Fans `trials` independent jobs across up to `max_threads` std::threads and
// returns the per-trial results in trial order. Each Machine/Simulator stays
// single-threaded and fully deterministic — trials share nothing, so runs
// are embarrassingly parallel and the result for trial i is byte-identical
// to a serial run. `fn` receives the trial index and must not touch shared
// mutable state.
template <typename Fn>
auto RunTrialsParallel(int trials, Fn fn, unsigned max_threads = 0)
    -> std::vector<decltype(fn(0))> {
  using Result = decltype(fn(0));
  std::vector<Result> results(static_cast<size_t>(trials));
  if (trials <= 0) {
    return results;
  }
  unsigned threads = max_threads != 0 ? max_threads : std::thread::hardware_concurrency();
  if (threads == 0) {
    threads = 1;
  }
  if (threads > static_cast<unsigned>(trials)) {
    threads = static_cast<unsigned>(trials);
  }
  if (threads == 1) {
    for (int i = 0; i < trials; ++i) {
      results[static_cast<size_t>(i)] = fn(i);
    }
    return results;
  }
  std::atomic<int> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&results, &next, &fn, trials] {
      for (int i = next.fetch_add(1); i < trials; i = next.fetch_add(1)) {
        results[static_cast<size_t>(i)] = fn(i);
      }
    });
  }
  for (std::thread& th : pool) {
    th.join();
  }
  return results;
}

// Minimal JSON builder for BENCH_*.json emitters (schema: EXPERIMENTS.md).
// Produces {"k": v, ...} objects and [v, ...] arrays; no escaping beyond
// what bench names need (no quotes/backslashes in keys or values).
class JsonObject {
 public:
  JsonObject& Field(const std::string& key, const std::string& string_value) {
    return Raw(key, "\"" + string_value + "\"");
  }
  JsonObject& Field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return Raw(key, buf);
  }
  JsonObject& Field(const std::string& key, uint64_t value) {
    return Raw(key, std::to_string(value));
  }
  JsonObject& Field(const std::string& key, int value) {
    return Raw(key, std::to_string(value));
  }
  JsonObject& Field(const std::string& key, bool value) {
    return Raw(key, value ? "true" : "false");
  }
  // Embeds a pre-rendered JSON value (a nested object or array).
  JsonObject& Raw(const std::string& key, const std::string& json_value) {
    body_ += body_.empty() ? "" : ", ";
    body_ += "\"" + key + "\": " + json_value;
    return *this;
  }
  std::string Render() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

inline std::string JsonArray(const std::vector<std::string>& json_values) {
  std::string out = "[";
  for (size_t i = 0; i < json_values.size(); ++i) {
    out += (i != 0 ? ", " : "") + json_values[i];
  }
  return out + "]";
}

// Writes a BENCH_*.json payload; returns false (with a note on stderr) on
// I/O failure so benches can exit nonzero.
inline bool WriteJsonFile(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "%s\n", json.c_str());
  std::fclose(f);
  return true;
}

// Builds a machine with one echo service and runs a closed-loop warm-up so
// steady-state measurements exclude cold-start effects.
struct EchoSetup {
  std::unique_ptr<Machine> machine;
  const ServiceDef* echo = nullptr;

  static EchoSetup Make(StackKind stack, PlatformSpec platform, int cores = 8,
                        Duration service_time = Nanoseconds(0), int max_cores = 1) {
    EchoSetup setup;
    MachineConfig config;
    config.stack = stack;
    config.platform = std::move(platform);
    config.num_cores = cores;
    config.nic_queues = stack == StackKind::kBypass ? 4 : 2;
    setup.machine = std::make_unique<Machine>(std::move(config));
    setup.echo = &setup.machine->AddService(
        ServiceRegistry::MakeEchoService(1, 7000, service_time), max_cores);
    setup.machine->Start();
    if (stack == StackKind::kLauberhorn) {
      setup.machine->StartHotLoop(*setup.echo);
    }
    setup.machine->sim().RunUntil(Milliseconds(1));
    return setup;
  }
};

}  // namespace lauberhorn

#endif  // BENCH_COMMON_H_
