// MICRO — google-benchmark microbenchmarks of the substrate hot paths:
// marshalling, framing, checksums, the event queue, histograms, and the
// model checker. These gate the simulator's own performance (a simulated
// second at 100 krps is ~10^6 events).
#include <benchmark/benchmark.h>

#include "src/model/lauberhorn_spec.h"
#include "src/net/headers.h"
#include "src/proto/marshal.h"
#include "src/proto/rpc_message.h"
#include "src/sim/random.h"
#include "src/sim/simulator.h"
#include "src/stats/histogram.h"

namespace lauberhorn {
namespace {

void BM_MarshalArgs(benchmark::State& state) {
  MethodSignature sig{{WireType::kU64, WireType::kBytes}};
  std::vector<WireValue> args = {
      WireValue::U64(42),
      WireValue::Bytes(std::vector<uint8_t>(static_cast<size_t>(state.range(0)), 7))};
  for (auto _ : state) {
    std::vector<uint8_t> out;
    MarshalArgs(sig, args, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * (state.range(0) + 8));
}
BENCHMARK(BM_MarshalArgs)->Arg(64)->Arg(1024)->Arg(16384);

void BM_UnmarshalArgs(benchmark::State& state) {
  MethodSignature sig{{WireType::kU64, WireType::kBytes}};
  std::vector<WireValue> args = {
      WireValue::U64(42),
      WireValue::Bytes(std::vector<uint8_t>(static_cast<size_t>(state.range(0)), 7))};
  std::vector<uint8_t> wire;
  MarshalArgs(sig, args, wire);
  for (auto _ : state) {
    std::vector<WireValue> out;
    UnmarshalArgs(sig, wire, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_UnmarshalArgs)->Arg(64)->Arg(1024)->Arg(16384);

void BM_BuildUdpFrame(benchmark::State& state) {
  EthernetHeader eth;
  Ipv4Header ip;
  ip.src = MakeIpv4(10, 0, 0, 1);
  ip.dst = MakeIpv4(10, 0, 0, 2);
  UdpHeader udp;
  udp.src_port = 1;
  udp.dst_port = 2;
  std::vector<uint8_t> payload(static_cast<size_t>(state.range(0)), 9);
  for (auto _ : state) {
    Packet p = BuildUdpFrame(eth, ip, udp, payload);
    benchmark::DoNotOptimize(p);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildUdpFrame)->Arg(64)->Arg(1472);

void BM_ParseUdpFrame(benchmark::State& state) {
  EthernetHeader eth;
  Ipv4Header ip;
  ip.src = MakeIpv4(10, 0, 0, 1);
  ip.dst = MakeIpv4(10, 0, 0, 2);
  UdpHeader udp;
  const Packet p = BuildUdpFrame(eth, ip, udp,
                                 std::vector<uint8_t>(static_cast<size_t>(state.range(0)), 9));
  for (auto _ : state) {
    auto frame = ParseUdpFrame(p);
    benchmark::DoNotOptimize(frame);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(p.size()));
}
BENCHMARK(BM_ParseUdpFrame)->Arg(64)->Arg(1472);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InternetChecksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1500)->Arg(65536);

void BM_SimulatorScheduleStep(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(Nanoseconds(i), [] {});
    }
    sim.RunUntilIdle();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleStep);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  for (auto _ : state) {
    h.Record(static_cast<Duration>(rng.UniformInt(1, 100000000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(static_cast<size_t>(state.range(0)), 1.0);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(16)->Arg(1024);

void BM_ModelCheckProtocol(benchmark::State& state) {
  for (auto _ : state) {
    SpecConfig config;
    config.num_requests = static_cast<int>(state.range(0));
    ProtoChecker checker;
    ProtoChecker::Options options;
    options.is_terminal_ok = LauberhornTerminalOk;
    options.goal = LauberhornGoal;
    auto result = checker.Check(LauberhornInitialState(config.num_requests),
                                LauberhornSuccessors(config), LauberhornInvariants(),
                                options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ModelCheckProtocol)->Arg(2)->Arg(3);

}  // namespace
}  // namespace lauberhorn

BENCHMARK_MAIN();
