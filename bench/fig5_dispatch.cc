// FIG5 — Figure 5: the traditional task-scheduling dispatch loop vs
// NIC-driven scheduling of RPC isolation domains.
//
// Left side of the figure (Linux): every request crosses IRQ -> softirq ->
// socket -> scheduler -> process; the table decomposes the modelled cost of
// each §2 step. Right side (Lauberhorn): the NIC performs steps 1-3, 5-7, 10
// and 11 in hardware; a stalled load returns the jump target, so the only
// software on the path is the handler itself. A kernel-channel cold dispatch
// (Fig. 5 (2)->(1)) is shown as the transition case.
//
// The decomposition rows restate the cost-model parameters the simulator
// charges; the measured totals at the bottom come from running each stack,
// confirming the model adds up.
#include "bench/common.h"

namespace lauberhorn {
namespace {

Duration MeasureEndSystem(StackKind stack, bool hot) {
  EchoSetup setup = EchoSetup::Make(stack, PlatformSpec::EnzianEci());
  Machine& machine = *setup.machine;
  machine.ResetMeasurement();

  int done = 0;
  std::vector<uint8_t> payload(64, 7);
  for (int i = 0; i < 50; ++i) {
    machine.sim().Schedule(Microseconds(200) * i, [&machine, &setup, &payload, &done,
                                                   stack, hot]() {
      if (stack == StackKind::kLauberhorn && !hot) {
        for (uint32_t ep : machine.EndpointsOf(*setup.echo)) {
          machine.lauberhorn_runtime()->Deschedule(ep);
        }
      }
      machine.client().Call(*setup.echo, 0,
                            std::vector<WireValue>{WireValue::Bytes(payload)},
                            [&done](const RpcMessage&, Duration) { ++done; });
    });
  }
  machine.sim().RunUntil(machine.sim().Now() + Milliseconds(100));
  return machine.end_system_latency().P50();
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  const bool csv = lauberhorn::BenchArgs::Parse(argc, argv).csv;
  using namespace lauberhorn;
  const PlatformSpec platform = PlatformSpec::EnzianEci();
  const OsCostModel& os = platform.os;
  const NicPipelineCosts& pipeline = platform.pipeline;
  const Duration hop = platform.coherence.cpu_device_hop;

  PrintHeader("FIG5", "dispatch-loop decomposition: traditional vs NIC-driven");

  Table table({"step (section 2)", "linux", "lauberhorn hot", "lauberhorn cold"});
  auto row = [&](const std::string& step, Duration linux_cost, Duration hot,
                 Duration cold) {
    auto cell = [](Duration d) {
      return d == 0 ? std::string("NIC/—") : Us(d) + "us";
    };
    table.AddRow({step, cell(linux_cost), cell(hot), cell(cold)});
  };

  // Steps 1-3: read packet, protocol processing, demux. The DMA NIC does
  // 1-3 in hardware too, but redoes protocol work in software (step 5).
  const Duration nic_front = pipeline.mac_rx + 3 * pipeline.parse_per_header;
  row("1-3 packet rx+parse+demux (hw)", nic_front + pipeline.rss_hash,
      nic_front + pipeline.demux_lookup, nic_front + pipeline.demux_lookup);
  // Step 4: interrupt.
  row("4  interrupt core", platform.pcie.msix_latency + os.irq_entry + os.irq_top_half,
      0, 0);
  // Step 5: kernel protocol processing (softirq).
  row("5  kernel protocol processing",
      os.softirq_entry + os.driver_rx_per_packet + os.protocol_processing, 0, 0);
  // Step 6: identify process (socket lookup / endpoint table).
  row("6  identify process", os.socket_lookup, pipeline.dispatch_decide,
      pipeline.dispatch_decide);
  // Steps 7-8: find core + schedule.
  row("7-8 find core + schedule", os.socket_wakeup + os.sched_pick, 0,
      os.ipi + os.sched_pick);
  // Step 9: context switch.
  row("9  context switch", os.context_switch, 0, os.context_switch);
  // Step 10: unmarshal.
  row("10 unmarshal args",
      os.syscall + os.socket_syscall_path + os.CopyCost(64) + os.SwMarshalCost(64),
      pipeline.UnmarshalCost(64), pipeline.UnmarshalCost(64));
  // Steps 11-12: find + jump to function.
  row("11-12 find + jump to function", Nanoseconds(100), Nanoseconds(20),
      Nanoseconds(20));
  // Delivery to the core.
  row("deliver args to registers", 0, hop + platform.coherence.data_beat,
      hop + platform.coherence.data_beat);

  PrintTable(table, csv);

  std::printf("\nmeasured end-system p50 (64B echo, unloaded):\n");
  Table measured({"stack", "end-system p50 (us)"});
  measured.AddRow({"linux", Us(MeasureEndSystem(StackKind::kLinux, true))});
  measured.AddRow({"lauberhorn hot", Us(MeasureEndSystem(StackKind::kLauberhorn, true))});
  measured.AddRow(
      {"lauberhorn cold", Us(MeasureEndSystem(StackKind::kLauberhorn, false))});
  PrintTable(measured, csv);

  std::printf("\nFig. 5's point: the left loop pays steps 4-9 in software per request;\n"
              "NIC-driven scheduling pays them only on the cold transition (2)->(1),\n"
              "after which the user-mode loop (1) dispatches with ~zero software cost.\n");
  return 0;
}
