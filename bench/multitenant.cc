// MTNT — multi-tenant NIC virtualization: noisy-neighbor isolation on one
// Lauberhorn machine carved into PF + 3 VFs (one per tenant), each VF with
// its own endpoint slice, admission quota, and dedup namespace, with
// Toeplitz RSS spreading each tenant's flows across its endpoint replicas.
//
// Cells:
//   solo   — each tenant alone at its fair rate: per-tenant baseline p99.
//   fair   — all three tenants at the fair rate simultaneously.
//   surge  — tenant B offers 10x its fair rate. The NIC's per-VF token
//            bucket sheds the excess on-device (kOverloaded, no handler
//            runs, no host core burned); tenants A and C must not notice.
//   dedup  — tenants A and B reuse the exact same (src ip, src port,
//            request id): per-VF dedup namespaces must execute both, and a
//            true intra-tenant duplicate must still be suppressed.
//   chaos  — periodic whole-NIC crashes while all three VFs carry load:
//            every recovery replays all three partitions and at-most-once
//            holds per tenant.
//
// Gates (--smoke shrinks the windows; gates are identical):
//   * surge tenant sheds on-NIC (sheds_vf_quota > 0, zero handler runs for
//     shed requests, zero extra host dispatches);
//   * victim p99 under surge within 15% of its solo baseline;
//   * zero cross-tenant dedup suppressions, intra-tenant dedup still works;
//   * chaos: zero duplicate executions, every crash recovered, and every
//     recovery replays all three VF partitions.
#include <cmath>
#include <memory>
#include <unordered_map>

#include "bench/common.h"
#include "src/net/headers.h"
#include "src/proto/marshal.h"
#include "src/proto/rpc_message.h"

namespace lauberhorn {
namespace {

constexpr int kTenants = 3;
constexpr double kFairRps = 20000.0;
constexpr double kSurgeFactor = 10.0;
// Per-VF quota: 1.5x the fair rate — headroom for jitter, far below surge.
constexpr double kQuotaRps = 1.5 * kFairRps;

struct TenantObs {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t overloaded = 0;
  uint64_t other = 0;  // timeouts etc. (chaos only)
  uint64_t dup_execs = 0;
  uint64_t total_execs = 0;
  uint64_t sheds_vf_quota = 0;
  uint64_t rss_steered = 0;
  uint64_t rss_fallbacks = 0;
  double p99_us = 0;
};

struct CellResult {
  TenantObs tenants[kTenants];
  uint64_t host_dispatches = 0;  // runtime hot + cold dispatches
  uint64_t nic_sheds_vf_quota = 0;
  uint64_t recoveries = 0;
  uint64_t nic_crashes = 0;
  uint64_t replayed_vfs = 0;
};

MachineConfig TenantMachine(uint64_t seed, bool chaos) {
  MachineConfig config;
  config.stack = StackKind::kLauberhorn;
  config.platform = PlatformSpec::EnzianEci();
  config.num_cores = 8;
  config.seed = seed;
  config.server_dedup = true;
  if (chaos) {
    config.client_retransmit_timeout = Microseconds(300);
    config.client_max_retransmits = 8;
    config.client_backoff_multiplier = 2.0;
    config.client_max_retransmit_timeout = Milliseconds(5);
    config.client_retransmit_jitter = 0.2;
    config.faults.nic_crash.first_crash_at = Milliseconds(2);
    config.faults.nic_crash.crash_period = Milliseconds(5);
    config.faults.nic_crash.reset_latency = Microseconds(80);
  }
  return config;
}

ServiceDef TenantService(int tenant,
                         std::unordered_map<uint64_t, uint32_t>& execs) {
  ServiceDef def;
  def.service_id = static_cast<uint32_t>(tenant + 1);
  def.name = "tenant-" + std::string(1, static_cast<char>('a' + tenant));
  def.udp_port = static_cast<uint16_t>(7000 + tenant);
  MethodDef method;
  method.method_id = 0;
  method.name = "work";
  method.request_sig.args = {WireType::kU64, WireType::kBytes};
  method.response_sig.args = {WireType::kU64, WireType::kBytes};
  method.handler = [&execs](const std::vector<WireValue>& args) {
    ++execs[args.at(0).scalar];
    return std::vector<WireValue>{args.at(0), args.at(1)};
  };
  method.SetFixedServiceTime(Microseconds(1));
  def.methods[0] = std::move(method);
  return def;
}

// One machine, three tenants on VFs 1..3, offered `rates[t]` rps each for
// `window`. Tenants with rate 0 stay idle (used for the solo baselines).
CellResult RunCell(uint64_t seed, const double (&rates)[kTenants],
                   Duration window, bool chaos) {
  Machine machine(TenantMachine(seed, chaos));
  std::unordered_map<uint64_t, uint32_t> execs[kTenants];
  const ServiceDef* services[kTenants];
  uint32_t vfs[kTenants];
  for (int t = 0; t < kTenants; ++t) {
    LauberhornNic::VfConfig vf;
    vf.name = "tenant-" + std::string(1, static_cast<char>('a' + t));
    vf.admission.enabled = true;
    vf.admission.quota_rps = kQuotaRps;
    vf.admission.quota_burst = 64;
    vf.endpoint_limit = 2;
    vfs[t] = machine.CreateVf(vf);
    services[t] = &machine.AddService(TenantService(t, execs[t]),
                                      /*max_cores=*/2, vfs[t]);
  }
  machine.Start();
  for (int t = 0; t < kTenants; ++t) {
    machine.StartHotLoop(*services[t]);
  }
  machine.sim().RunUntil(Milliseconds(1));

  CellResult cell;
  Histogram rtts[kTenants];
  const SimTime stop = machine.sim().Now() + window;
  const std::vector<uint8_t> payload(64, 0xab);
  uint64_t seq = 0;
  for (int t = 0; t < kTenants; ++t) {
    if (rates[t] <= 0) {
      continue;
    }
    const Duration gap = NanosecondsF(1e9 / rates[t]);
    auto fire = std::make_shared<Function<void()>>();
    *fire = [&machine, &cell, &rtts, &seq, services, fire, stop, gap, payload,
             t]() {
      if (machine.sim().Now() >= stop) {
        return;
      }
      TenantObs& obs = cell.tenants[t];
      ++obs.sent;
      std::vector<WireValue> args = {WireValue::U64(seq++),
                                     WireValue::Bytes(payload)};
      machine.client().Call(*services[t], 0, args,
                            [&obs, &rtts, t](const RpcMessage& response,
                                             Duration rtt) {
                              if (response.status == RpcStatus::kOk) {
                                ++obs.ok;
                                rtts[t].Record(rtt);
                              } else if (response.status ==
                                         RpcStatus::kOverloaded) {
                                ++obs.overloaded;
                              } else {
                                ++obs.other;
                              }
                            });
      machine.sim().Schedule(gap, [fire]() { (*fire)(); });
    };
    (*fire)();
  }
  // Drain: chaos needs the full retransmit ladder to reach terminal outcomes.
  machine.sim().RunUntil(stop + (chaos ? Milliseconds(40) : Milliseconds(5)));

  const LauberhornNic& nic = *machine.lauberhorn_nic();
  for (int t = 0; t < kTenants; ++t) {
    TenantObs& obs = cell.tenants[t];
    for (const auto& [s, count] : execs[t]) {
      obs.total_execs += count;
      if (count > 1) {
        ++obs.dup_execs;
      }
    }
    const LauberhornNic::VfStats& vstats = nic.vf_stats(vfs[t]);
    obs.sheds_vf_quota = vstats.sheds_vf_quota;
    obs.rss_steered = vstats.rss_steered;
    obs.rss_fallbacks = vstats.rss_fallbacks;
    obs.p99_us = ToMicroseconds(rtts[t].P99());
  }
  cell.host_dispatches = machine.lauberhorn_runtime()->rpcs_hot() +
                         machine.lauberhorn_runtime()->rpcs_cold();
  cell.nic_sheds_vf_quota = nic.stats().requests_shed_vf_quota;
  if (machine.nic_recovery() != nullptr) {
    cell.recoveries = machine.nic_recovery()->stats().recoveries;
    cell.replayed_vfs = machine.nic_recovery()->stats().replayed_vfs;
  }
  if (machine.fault_injector() != nullptr) {
    cell.nic_crashes = machine.fault_injector()->stats().nic_crashes;
  }
  return cell;
}

// Dedup-namespace cell: raw frames with identical (src ip, src port,
// request id) at two tenants' ports, plus one true intra-tenant duplicate.
struct DedupCell {
  uint64_t execs_a = 0;
  uint64_t execs_b = 0;
  uint64_t cross_tenant_suppressions = 0;
  uint64_t intra_tenant_suppressions = 0;
};

Packet RawRequest(uint16_t src_port, uint16_t dst_port, uint64_t request_id,
                  uint64_t seq) {
  std::vector<uint8_t> args;
  MarshalArgs(MethodSignature{{WireType::kU64}},
              std::vector<WireValue>{WireValue::U64(seq)}, args);
  RpcMessage msg;
  msg.kind = MessageKind::kRequest;
  msg.method_id = 0;
  msg.request_id = request_id;
  msg.payload = std::move(args);
  std::vector<uint8_t> wire;
  EncodeRpcMessage(msg, wire);
  EthernetHeader eth;
  eth.src = {2, 0, 0, 0, 0, 1};
  eth.dst = {2, 0, 0, 0, 0, 2};
  Ipv4Header ip;
  ip.src = MakeIpv4(10, 0, 0, 1);
  ip.dst = MakeIpv4(10, 0, 0, 2);
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  return BuildUdpFrame(eth, ip, udp, wire);
}

DedupCell RunDedupCell(uint64_t seed) {
  Machine machine(TenantMachine(seed, /*chaos=*/false));
  std::unordered_map<uint64_t, uint32_t> execs_a, execs_b;
  struct {
    std::unordered_map<uint64_t, uint32_t>* execs;
  } tenants[2] = {{&execs_a}, {&execs_b}};
  const ServiceDef* services[2];
  for (int t = 0; t < 2; ++t) {
    LauberhornNic::VfConfig vf;
    vf.name = "dedup-tenant-" + std::to_string(t);
    services[t] = &machine.AddService(
        [&]() {
          ServiceDef def;
          def.service_id = static_cast<uint32_t>(t + 1);
          def.name = "dedup-" + std::to_string(t);
          def.udp_port = static_cast<uint16_t>(7000 + t);
          MethodDef method;
          method.method_id = 0;
          method.request_sig.args = {WireType::kU64};
          method.response_sig.args = {WireType::kU64};
          auto* execs = tenants[t].execs;
          method.handler = [execs](const std::vector<WireValue>& args) {
            ++(*execs)[args.at(0).scalar];
            return std::vector<WireValue>{args.at(0)};
          };
          method.SetFixedServiceTime(Nanoseconds(500));
          def.methods[0] = std::move(method);
          return def;
        }(),
        /*max_cores=*/1, machine.CreateVf(vf));
  }
  machine.Start();
  machine.StartHotLoop(*services[0]);
  machine.StartHotLoop(*services[1]);
  machine.sim().RunUntil(Microseconds(100));

  LauberhornNic& nic = *machine.lauberhorn_nic();
  // 32 colliding keys across the two tenants.
  for (uint64_t i = 0; i < 32; ++i) {
    nic.ReceivePacket(RawRequest(static_cast<uint16_t>(40000 + i), 7000,
                                 /*request_id=*/1000 + i, /*seq=*/i));
    nic.ReceivePacket(RawRequest(static_cast<uint16_t>(40000 + i), 7001,
                                 /*request_id=*/1000 + i, /*seq=*/i));
  }
  machine.sim().RunUntil(Milliseconds(2));

  DedupCell cell;
  cell.cross_tenant_suppressions =
      nic.stats().dup_drops_in_flight + nic.stats().dup_replays;
  // Control: the same key again at tenant A must be suppressed.
  nic.ReceivePacket(RawRequest(40000, 7000, 1000, 0));
  machine.sim().RunUntil(Milliseconds(3));
  cell.intra_tenant_suppressions = nic.stats().dup_drops_in_flight +
                                   nic.stats().dup_replays -
                                   cell.cross_tenant_suppressions;
  for (const auto& [s, count] : execs_a) {
    cell.execs_a += count;
  }
  for (const auto& [s, count] : execs_b) {
    cell.execs_b += count;
  }
  return cell;
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  using namespace lauberhorn;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("MTNT",
              "multi-tenant NIC: PF/VF partitioning + per-VF quota isolation");

  const Duration window = args.smoke ? Milliseconds(10) : Milliseconds(50);
  bool violation = false;
  std::vector<std::string> json_rows;

  // -- solo baselines (one machine per tenant, others idle) --
  CellResult solo[kTenants];
  for (int t = 0; t < kTenants; ++t) {
    double rates[kTenants] = {0, 0, 0};
    rates[t] = kFairRps;
    solo[t] = RunCell(args.seed, rates, window, /*chaos=*/false);
  }

  // -- all tenants at the fair rate --
  const double fair_rates[kTenants] = {kFairRps, kFairRps, kFairRps};
  const CellResult fair = RunCell(args.seed, fair_rates, window, false);

  // -- tenant B surges to 10x --
  const double surge_rates[kTenants] = {kFairRps, kSurgeFactor * kFairRps,
                                        kFairRps};
  const CellResult surge = RunCell(args.seed, surge_rates, window, false);

  Table isolation({"tenant", "solo p99 (us)", "fair p99 (us)",
                   "surge p99 (us)", "surge sent", "surge ok",
                   "surge shed (vf quota)", "rss steered"});
  const char* names[kTenants] = {"A (victim)", "B (aggressor)", "C (victim)"};
  for (int t = 0; t < kTenants; ++t) {
    isolation.AddRow(
        {names[t], Table::Num(solo[t].tenants[t].p99_us, 2),
         Table::Num(fair.tenants[t].p99_us, 2),
         Table::Num(surge.tenants[t].p99_us, 2),
         Table::Int(static_cast<int64_t>(surge.tenants[t].sent)),
         Table::Int(static_cast<int64_t>(surge.tenants[t].ok)),
         Table::Int(static_cast<int64_t>(surge.tenants[t].sheds_vf_quota)),
         Table::Int(static_cast<int64_t>(surge.tenants[t].rss_steered))});
    JsonObject row;
    row.Field("mode", std::string("isolation"))
        .Field("tenant", std::string(1, static_cast<char>('a' + t)))
        .Field("solo_p99_us", solo[t].tenants[t].p99_us)
        .Field("fair_p99_us", fair.tenants[t].p99_us)
        .Field("surge_p99_us", surge.tenants[t].p99_us)
        .Field("surge_sent", surge.tenants[t].sent)
        .Field("surge_ok", surge.tenants[t].ok)
        .Field("surge_overloaded", surge.tenants[t].overloaded)
        .Field("surge_sheds_vf_quota", surge.tenants[t].sheds_vf_quota)
        .Field("rss_steered", surge.tenants[t].rss_steered)
        .Field("rss_fallbacks", surge.tenants[t].rss_fallbacks)
        .Field("duplicate_executions", surge.tenants[t].dup_execs);
    json_rows.push_back(row.Render());
  }
  PrintTable(isolation, args.csv);

  // Gate: the aggressor was shed on-NIC...
  if (surge.tenants[1].sheds_vf_quota == 0) {
    std::fprintf(stderr, "VIOLATION: surge tenant was never shed by its VF quota\n");
    violation = true;
  }
  // ...before any handler ran (shed requests execute nothing)...
  for (int t = 0; t < kTenants; ++t) {
    if (surge.tenants[t].total_execs != surge.tenants[t].ok) {
      std::fprintf(stderr,
                   "VIOLATION: tenant %c executed %llu but completed %llu "
                   "(sheds must never execute)\n",
                   'a' + t,
                   static_cast<unsigned long long>(surge.tenants[t].total_execs),
                   static_cast<unsigned long long>(surge.tenants[t].ok));
      violation = true;
    }
  }
  // ...and at zero host dispatch cost: every host dispatch corresponds to an
  // executed request; the ~180k shed requests added none.
  {
    uint64_t execs = 0;
    for (int t = 0; t < kTenants; ++t) {
      execs += surge.tenants[t].total_execs;
    }
    if (surge.host_dispatches != execs) {
      std::fprintf(stderr,
                   "VIOLATION: %llu host dispatches for %llu executions "
                   "(on-NIC sheds must not burn host cores)\n",
                   static_cast<unsigned long long>(surge.host_dispatches),
                   static_cast<unsigned long long>(execs));
      violation = true;
    }
  }
  // Gate: victims' p99 within 15% of their solo baselines.
  for (int t = 0; t < kTenants; t += 2) {
    const double solo_p99 = solo[t].tenants[t].p99_us;
    const double surge_p99 = surge.tenants[t].p99_us;
    if (surge_p99 > 1.15 * solo_p99) {
      std::fprintf(stderr,
                   "VIOLATION: tenant %c p99 %.2f us under surge vs %.2f us "
                   "solo (> 15%% degradation)\n",
                   'a' + t, surge_p99, solo_p99);
      violation = true;
    }
  }
  // Sanity: the victims' goodput survived intact.
  for (int t = 0; t < kTenants; t += 2) {
    if (surge.tenants[t].ok != surge.tenants[t].sent) {
      std::fprintf(stderr, "VIOLATION: victim %c lost goodput under surge (%llu/%llu ok)\n",
                   'a' + t,
                   static_cast<unsigned long long>(surge.tenants[t].ok),
                   static_cast<unsigned long long>(surge.tenants[t].sent));
      violation = true;
    }
  }

  // -- dedup namespace isolation --
  const DedupCell dedup = RunDedupCell(args.seed);
  Table dtable({"metric", "value"});
  dtable.AddRow({"tenant A executions", Table::Int(static_cast<int64_t>(dedup.execs_a))});
  dtable.AddRow({"tenant B executions", Table::Int(static_cast<int64_t>(dedup.execs_b))});
  dtable.AddRow({"cross-tenant suppressions", Table::Int(static_cast<int64_t>(dedup.cross_tenant_suppressions))});
  dtable.AddRow({"intra-tenant suppressions", Table::Int(static_cast<int64_t>(dedup.intra_tenant_suppressions))});
  PrintTable(dtable, args.csv);
  {
    JsonObject row;
    row.Field("mode", std::string("dedup"))
        .Field("tenant_a_executions", dedup.execs_a)
        .Field("tenant_b_executions", dedup.execs_b)
        .Field("cross_tenant_suppressions", dedup.cross_tenant_suppressions)
        .Field("intra_tenant_suppressions", dedup.intra_tenant_suppressions);
    json_rows.push_back(row.Render());
  }
  if (dedup.execs_a != 32 || dedup.execs_b != 32 ||
      dedup.cross_tenant_suppressions != 0) {
    std::fprintf(stderr,
                 "VIOLATION: cross-tenant dedup leak (A=%llu B=%llu suppressed=%llu; "
                 "want 32/32/0)\n",
                 static_cast<unsigned long long>(dedup.execs_a),
                 static_cast<unsigned long long>(dedup.execs_b),
                 static_cast<unsigned long long>(dedup.cross_tenant_suppressions));
    violation = true;
  }
  if (dedup.intra_tenant_suppressions != 1) {
    std::fprintf(stderr, "VIOLATION: intra-tenant duplicate was not suppressed\n");
    violation = true;
  }

  // -- chaos: periodic NIC crashes with three active VFs --
  const CellResult chaos = RunCell(args.seed, fair_rates,
                                   args.smoke ? Milliseconds(12) : Milliseconds(30),
                                   /*chaos=*/true);
  Table ctable({"metric", "value"});
  ctable.AddRow({"nic crashes", Table::Int(static_cast<int64_t>(chaos.nic_crashes))});
  ctable.AddRow({"recoveries", Table::Int(static_cast<int64_t>(chaos.recoveries))});
  ctable.AddRow({"replayed VFs", Table::Int(static_cast<int64_t>(chaos.replayed_vfs))});
  uint64_t chaos_dups = 0, chaos_sent = 0, chaos_ok = 0;
  for (int t = 0; t < kTenants; ++t) {
    chaos_dups += chaos.tenants[t].dup_execs;
    chaos_sent += chaos.tenants[t].sent;
    chaos_ok += chaos.tenants[t].ok;
  }
  ctable.AddRow({"sent", Table::Int(static_cast<int64_t>(chaos_sent))});
  ctable.AddRow({"goodput", Table::Int(static_cast<int64_t>(chaos_ok))});
  ctable.AddRow({"dup execs", Table::Int(static_cast<int64_t>(chaos_dups))});
  PrintTable(ctable, args.csv);
  {
    JsonObject row;
    row.Field("mode", std::string("chaos"))
        .Field("nic_crashes", chaos.nic_crashes)
        .Field("recoveries", chaos.recoveries)
        .Field("replayed_vfs", chaos.replayed_vfs)
        .Field("sent", chaos_sent)
        .Field("goodput", chaos_ok)
        .Field("duplicate_executions", chaos_dups);
    json_rows.push_back(row.Render());
  }
  if (chaos.nic_crashes == 0 || chaos.recoveries != chaos.nic_crashes) {
    std::fprintf(stderr, "VIOLATION: recovered %llu of %llu NIC crashes\n",
                 static_cast<unsigned long long>(chaos.recoveries),
                 static_cast<unsigned long long>(chaos.nic_crashes));
    violation = true;
  }
  if (chaos.replayed_vfs != kTenants * chaos.recoveries) {
    std::fprintf(stderr,
                 "VIOLATION: %llu VF partitions replayed over %llu recoveries "
                 "(want %d per recovery)\n",
                 static_cast<unsigned long long>(chaos.replayed_vfs),
                 static_cast<unsigned long long>(chaos.recoveries), kTenants);
    violation = true;
  }
  if (chaos_dups != 0) {
    std::fprintf(stderr, "VIOLATION: %llu duplicate executions under chaos\n",
                 static_cast<unsigned long long>(chaos_dups));
    violation = true;
  }
  if (chaos_ok == 0) {
    std::fprintf(stderr, "VIOLATION: chaos cell completed nothing\n");
    violation = true;
  }

  if (!args.json.empty()) {
    JsonObject doc;
    doc.Field("bench", std::string("MTNT"))
        .Field("seed", args.seed)
        .Field("smoke", args.smoke)
        .Field("fair_rps", kFairRps)
        .Field("surge_factor", kSurgeFactor)
        .Field("quota_rps", kQuotaRps)
        .Raw("rows", JsonArray(json_rows));
    if (!WriteJsonFile(args.json, doc.Render())) {
      return 1;
    }
  }

  std::printf("\nExpected shape: tenant B's 10x surge is clipped at its VF quota by the\n"
              "NIC's token bucket — shed before any handler runs, costing zero host\n"
              "dispatches — so tenants A and C keep their solo-baseline p99 (within\n"
              "15%%). Per-VF dedup namespaces never suppress across tenants, and a NIC\n"
              "crash replays all three VF partitions from the OS shadow with\n"
              "at-most-once intact.\n");
  return violation ? 1 : 0;
}
