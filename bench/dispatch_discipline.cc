// DISP — NIC dispatch disciplines under heavy-tailed workloads (DESIGN.md §18).
//
// One Lauberhorn receiver serves a counting service on 4 hot cores under each
// of the three nanoPU-style dispatch disciplines:
//   d-FCFS  per-core queues, RSS-hash placement, no migration
//   c-FCFS  one NIC-side central queue, cores pull on CONTROL stall
//   JBSQ(k) central queue + at most k resident requests per core
// crossed with three service-time distributions of increasing dispersion
// (exponential, 99.5/0.5 bimodal, bounded Pareto), swept over offered load as
// a fraction of the distribution's calibrated saturation capacity. Service
// times are a pure function of the request's sequence number (src/workload),
// so every policy serves the *identical* request cost sequence and the
// measured separation is the discipline's alone.
//
// The claim under test (nanoPU table 1, reproduced in a NIC-as-OS setting):
// under low dispersion the disciplines are nearly indistinguishable, but as
// dispersion grows d-FCFS's tail blows up (arrivals pinned behind a rare
// 100x request on the same core while other cores idle) while c-FCFS and
// JBSQ(k) hold — JBSQ paying a small bound-staleness premium over c-FCFS in
// exchange for the pipelined runway.
//
// A chaos pair reruns c-FCFS and JBSQ under the periodic NIC-crash fault
// plan with client retransmits + server dedup: the central queue is volatile
// device state, wiped at crash, and at-most-once execution must survive its
// loss. A final cell reruns the gate cell under a different PDES shard count
// and requires bit-identical observables.
//
// --smoke gates (exit 1 + VIOLATION on stderr):
//   - bimodal at 0.8 load: d-FCFS p99 >= 2x JBSQ(k) p99
//   - bimodal at 0.8 load: JBSQ(k) p99 <= 1.3x c-FCFS p99
//   - bimodal at 0.8 load: JBSQ(k) p99 <= 0.5x d-FCFS p99
//   - zero duplicate executions in every cell, chaos cells included
//   - chaos cells actually crashed (nic_resets > 0) and still served
//   - sequential and sharded gate-cell runs agree exactly
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bench/common.h"
#include "src/core/testbed.h"
#include "src/nic/dispatch_policy/dispatch_policy.h"
#include "src/sim/shard.h"

namespace lauberhorn {
namespace {

constexpr int kServiceCores = 4;

ServiceTimeSpec MakeSpec(ServiceTimeDist dist) {
  ServiceTimeSpec spec;
  spec.dist = dist;
  spec.seed = 0x5eed;
  switch (dist) {
    case ServiceTimeDist::kFixed:
    case ServiceTimeDist::kExponential:
      spec.mean = Microseconds(2);
      break;
    case ServiceTimeDist::kBimodal:
      // nanoPU's high-dispersion point: 99.5% at 1us, 0.5% at 100us.
      spec.heavy_fraction = 0.005;
      spec.bimodal_short = Microseconds(1);
      spec.bimodal_long = Microseconds(100);
      break;
    case ServiceTimeDist::kBoundedPareto:
      spec.pareto_alpha = 1.2;
      spec.pareto_lo = Nanoseconds(500);
      spec.pareto_hi = Microseconds(200);
      break;
  }
  return spec;
}

DispatchPolicyConfig MakePolicy(DispatchPolicyKind kind) {
  DispatchPolicyConfig policy;
  policy.kind = kind;
  policy.jbsq_k = 2;
  return policy;
}

ServiceDef MakeCountingService(const ServiceTimeSpec& spec,
                               DispatchPolicyConfig policy,
                               std::unordered_map<uint64_t, uint32_t>* execs) {
  ServiceDef def;
  def.service_id = 1;
  def.name = "disp";
  def.udp_port = 7000;
  def.dispatch = policy;
  MethodDef method;
  method.method_id = 0;
  method.name = "count";
  method.request_sig.args = {WireType::kU64};
  method.response_sig.args = {WireType::kU64};
  method.handler = [execs](const std::vector<WireValue>& args) {
    if (execs != nullptr) {
      ++(*execs)[args.at(0).scalar];
    }
    return std::vector<WireValue>{args.at(0)};
  };
  method.service_time = MakeServiceTimeFn(spec);
  def.methods[0] = std::move(method);
  return def;
}

// Saturation capacity (requests/s) of the 4-core receiver under this
// distribution, measured with a closed loop under c-FCFS (work-conserving,
// so the number is the machine's, not any one discipline's).
double Calibrate(ServiceTimeDist dist, uint64_t seed) {
  MachineConfig config;
  config.stack = StackKind::kLauberhorn;
  config.num_cores = 8;
  config.seed = seed;
  Machine machine(std::move(config));
  const ServiceDef& svc = machine.AddService(
      MakeCountingService(MakeSpec(dist), MakePolicy(DispatchPolicyKind::kCFcfs),
                          nullptr),
      kServiceCores);
  machine.Start();
  machine.StartHotLoop(svc);
  machine.sim().RunUntil(Milliseconds(1));

  ClosedLoopGenerator::Config gen_config;
  gen_config.concurrency = 64;
  gen_config.seed = seed;
  ClosedLoopGenerator gen(machine.sim(), machine.client(),
                          {{&svc, 0, 8, 1.0}}, gen_config);
  gen.Start();
  machine.sim().RunUntil(machine.sim().Now() + Milliseconds(1));  // settle
  const uint64_t before = gen.completed();
  const Duration window = Milliseconds(4);
  machine.sim().RunUntil(machine.sim().Now() + window);
  const uint64_t delta = gen.completed() - before;
  gen.Stop();
  return static_cast<double>(delta) / ToSeconds(window);
}

struct CellParams {
  DispatchPolicyKind policy = DispatchPolicyKind::kDFcfs;
  ServiceTimeDist dist = ServiceTimeDist::kExponential;
  double load = 0.8;          // fraction of calibrated capacity
  double capacity_rps = 0.0;  // from Calibrate()
  Duration measure = Milliseconds(10);
  Duration warmup = Milliseconds(2);
  Duration drain = Milliseconds(5);
  uint64_t seed = 1;
  int shards = 1;
  bool chaos = false;  // periodic NIC crashes + retransmits + dedup
};

struct CellResult {
  uint64_t sent = 0;
  uint64_t ok = 0;  // measured-window completions
  uint64_t timeouts = 0;
  uint64_t sheds = 0;
  uint64_t dup_execs = 0;
  uint64_t total_execs = 0;
  uint64_t nic_resets = 0;
  uint64_t central_queued = 0;
  uint64_t local_queued = 0;
  uint64_t hot = 0;
  Duration p50 = 0, p99 = 0, p999 = 0;
};

CellResult RunCell(const CellParams& p) {
  TestbedConfig tb;
  tb.shards = p.shards;
  Testbed testbed(tb);

  MachineConfig server_config;
  server_config.stack = StackKind::kLauberhorn;
  server_config.num_cores = 8;
  server_config.seed = p.seed;
  server_config.server_dedup = true;
  MachineConfig client_config = server_config;
  client_config.seed = p.seed + 977;
  if (p.chaos) {
    server_config.faults.nic_crash.first_crash_at = Milliseconds(1);
    server_config.faults.nic_crash.crash_period = Milliseconds(2);
    server_config.faults.nic_crash.reset_latency = Microseconds(50);
    // At-most-once only holds while the dedup window covers the client's
    // full retransmit horizon: a response lost in a blackout keeps its id
    // pinned until the *next* crash demotes it to an evictable completed
    // entry, and at 4-core throughput the default 1024-completion window
    // expires in ~1.3 ms while the backoff ladder stretches past 10 ms.
    // Provision the window for horizon x capacity, as a deployment would.
    server_config.server_dedup_window = 16384;
    client_config.client_retransmit_timeout = Microseconds(300);
    client_config.client_max_retransmits = 8;
    client_config.client_backoff_multiplier = 2.0;
    client_config.client_max_retransmit_timeout = Milliseconds(3);
  }
  Machine& server = testbed.AddMachine(server_config);
  Machine& client = testbed.AddMachine(client_config);

  std::unordered_map<uint64_t, uint32_t> execs;
  const ServiceDef& svc = server.AddService(
      MakeCountingService(MakeSpec(p.dist), MakePolicy(p.policy), &execs),
      kServiceCores);
  server.Start();
  client.Start();
  server.StartHotLoop(svc);
  const uint32_t server_ip = server.config().server_ip;

  const SimTime t_start = testbed.sim().Now() + Milliseconds(1);
  const SimTime t_measure = t_start + p.warmup;
  const SimTime t_stop = t_measure + p.measure;

  // Open-loop Poisson arrivals at load x capacity, one unique sequence
  // number per request (the service-time hash key).
  struct Driver {
    Simulator* sim = nullptr;
    RpcClient* client = nullptr;
    uint32_t server_ip = 0;
    double rate_rps = 0.0;
    SimTime t_measure = 0, t_stop = 0;
    uint64_t seq = 0;
    uint64_t ok = 0;
    Histogram rtt;
    Rng gaps{1};
    Callback fire;
  };
  auto driver = std::make_unique<Driver>();
  Driver* d = driver.get();
  d->sim = &client.sim();
  d->client = &client.client();
  d->server_ip = server_ip;
  d->rate_rps = p.load * p.capacity_rps;
  d->t_measure = t_measure;
  d->t_stop = t_stop;
  d->gaps = Rng(p.seed ^ 0x9e3779b97f4a7c15ULL);
  d->fire = [d]() {
    if (d->sim->Now() >= d->t_stop) {
      return;
    }
    std::vector<uint8_t> payload;
    MarshalArgs(MethodSignature{{WireType::kU64}},
                std::vector<WireValue>{WireValue::U64(d->seq++)}, payload);
    d->client->CallRawTo(d->server_ip, 7000, 1, 0, std::move(payload),
                         [d](const RpcMessage& r, Duration rtt) {
                           if (r.status == RpcStatus::kOk &&
                               d->sim->Now() >= d->t_measure &&
                               d->sim->Now() < d->t_stop) {
                             ++d->ok;
                             d->rtt.Record(rtt);
                           }
                         });
    d->sim->Schedule(
        NanosecondsF(d->gaps.Exponential(1.0 / d->rate_rps) * 1e9),
        [d] { d->fire(); });
  };
  d->sim->ScheduleAt(t_start, [d] { d->fire(); });

  testbed.RunUntil(t_stop + p.drain);

  CellResult result;
  result.sent = d->seq;
  result.ok = d->ok;
  result.p50 = d->rtt.P50();
  result.p99 = d->rtt.P99();
  result.p999 = d->rtt.P999();
  result.timeouts = client.client().timeouts();
  const auto& stats = server.lauberhorn_nic()->stats();
  result.sheds = stats.requests_shed_queue + stats.requests_shed_quota +
                 stats.requests_shed_sojourn + stats.requests_shed_vf_quota;
  result.nic_resets = stats.nic_resets;
  for (const auto& [kind, ps] : server.lauberhorn_nic()->PolicyStatsSnapshot()) {
    if (kind == p.policy) {
      result.central_queued = ps.central_queued;
      result.local_queued = ps.local_queued;
      result.hot = ps.hot_dispatches;
    }
  }
  for (const auto& [seq, count] : execs) {
    result.total_execs += count;
    result.dup_execs += count > 1;
  }
  return result;
}

std::string PolicyLabel(DispatchPolicyKind kind) { return ToString(kind); }

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  using namespace lauberhorn;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("DISP",
              "d-FCFS vs c-FCFS vs JBSQ(k) under heavy-tailed service times");

  const std::vector<DispatchPolicyKind> policies = {DispatchPolicyKind::kDFcfs,
                                                    DispatchPolicyKind::kCFcfs,
                                                    DispatchPolicyKind::kJbsq};
  const std::vector<ServiceTimeDist> dists = {ServiceTimeDist::kExponential,
                                              ServiceTimeDist::kBimodal,
                                              ServiceTimeDist::kBoundedPareto};
  const std::vector<double> loads =
      args.smoke ? std::vector<double>{0.5, 0.8}
                 : std::vector<double>{0.5, 0.7, 0.8, 0.9};
  const double gate_load = 0.8;

  CellParams base;
  base.seed = args.seed;
  base.measure = args.smoke ? Milliseconds(10) : Milliseconds(25);

  // Capacity is per distribution, not per policy: c-FCFS (work-conserving)
  // defines saturation, the loads are fractions of it.
  std::vector<double> capacity(dists.size(), 0.0);
  for (size_t i = 0; i < dists.size(); ++i) {
    capacity[i] = Calibrate(dists[i], args.seed);
  }

  int violations = 0;
  auto violation = [&](const char* fmt, auto... vals) {
    std::fprintf(stderr, "VIOLATION: ");
    std::fprintf(stderr, fmt, vals...);
    std::fprintf(stderr, "\n");
    ++violations;
  };

  Table table({"dist", "policy", "load", "cap_krps", "sent", "ok", "p50_us",
               "p99_us", "p999_us", "hot", "queued", "sheds", "dups"});
  std::vector<std::string> rows_json;
  // gate cell lookup: [dist][policy] at the gate load
  std::vector<std::vector<CellResult>> at_gate(
      dists.size(), std::vector<CellResult>(policies.size()));
  CellParams gate_params;  // JBSQ/bimodal cell, for the shard recheck

  for (size_t di = 0; di < dists.size(); ++di) {
    for (double load : loads) {
      for (size_t pi = 0; pi < policies.size(); ++pi) {
        CellParams p = base;
        p.policy = policies[pi];
        p.dist = dists[di];
        p.load = load;
        p.capacity_rps = capacity[di];
        p.shards = args.shards;
        const CellResult r = RunCell(p);
        if (load == gate_load) {
          at_gate[di][pi] = r;
          if (dists[di] == ServiceTimeDist::kBimodal &&
              policies[pi] == DispatchPolicyKind::kJbsq) {
            gate_params = p;
          }
        }
        table.AddRow({ToString(dists[di]), PolicyLabel(policies[pi]),
                      Table::Num(load, 2), Table::Num(capacity[di] / 1e3, 0),
                      Table::Int(static_cast<int64_t>(r.sent)),
                      Table::Int(static_cast<int64_t>(r.ok)), Us(r.p50),
                      Us(r.p99), Us(r.p999),
                      Table::Int(static_cast<int64_t>(r.hot)),
                      Table::Int(static_cast<int64_t>(r.central_queued +
                                                      r.local_queued)),
                      Table::Int(static_cast<int64_t>(r.sheds)),
                      Table::Int(static_cast<int64_t>(r.dup_execs))});
        rows_json.push_back(
            JsonObject()
                .Field("dist", std::string(ToString(dists[di])))
                .Field("policy", std::string(ToString(policies[pi])))
                .Field("load", load)
                .Field("capacity_rps", capacity[di])
                .Field("sent", r.sent)
                .Field("ok", r.ok)
                .Field("p50_us", ToMicroseconds(r.p50))
                .Field("p99_us", ToMicroseconds(r.p99))
                .Field("p999_us", ToMicroseconds(r.p999))
                .Field("hot_dispatches", r.hot)
                .Field("central_queued", r.central_queued)
                .Field("local_queued", r.local_queued)
                .Field("sheds", r.sheds)
                .Field("duplicate_executions", r.dup_execs)
                .Render());
        if (r.dup_execs != 0) {
          violation("%s/%s at %.1f load executed %" PRIu64
                    " sequences more than once",
                    ToString(dists[di]), ToString(policies[pi]), load,
                    r.dup_execs);
        }
        if (r.ok == 0) {
          violation("%s/%s at %.1f load served nothing", ToString(dists[di]),
                    ToString(policies[pi]), load);
        }
      }
    }
  }
  PrintTable(table, args.csv);

  // --- Tail-separation gates at the high-dispersion, high-load point --------
  const size_t bimodal_index = 1;
  const CellResult& dfcfs = at_gate[bimodal_index][0];
  const CellResult& cfcfs = at_gate[bimodal_index][1];
  const CellResult& jbsq = at_gate[bimodal_index][2];
  std::printf("\nbimodal @ %.1f load: d-FCFS p99 %.1f us | c-FCFS p99 %.1f us "
              "| JBSQ(2) p99 %.1f us\n",
              gate_load, ToMicroseconds(dfcfs.p99), ToMicroseconds(cfcfs.p99),
              ToMicroseconds(jbsq.p99));
  if (static_cast<double>(dfcfs.p99) < 2.0 * static_cast<double>(jbsq.p99)) {
    violation("d-FCFS p99 (%.1f us) is not >= 2x JBSQ p99 (%.1f us) under "
              "bimodal at %.1f load",
              ToMicroseconds(dfcfs.p99), ToMicroseconds(jbsq.p99), gate_load);
  }
  if (static_cast<double>(jbsq.p99) > 1.3 * static_cast<double>(cfcfs.p99)) {
    violation("JBSQ p99 (%.1f us) exceeds 1.3x c-FCFS p99 (%.1f us) under "
              "bimodal at %.1f load",
              ToMicroseconds(jbsq.p99), ToMicroseconds(cfcfs.p99), gate_load);
  }
  if (static_cast<double>(jbsq.p99) > 0.5 * static_cast<double>(dfcfs.p99)) {
    violation("JBSQ p99 (%.1f us) exceeds 0.5x d-FCFS p99 (%.1f us) under "
              "bimodal at %.1f load",
              ToMicroseconds(jbsq.p99), ToMicroseconds(dfcfs.p99), gate_load);
  }

  // --- Chaos pair: crash-wiped central queues stay at-most-once --------------
  std::vector<std::string> chaos_json;
  for (DispatchPolicyKind kind :
       {DispatchPolicyKind::kCFcfs, DispatchPolicyKind::kJbsq}) {
    CellParams p = base;
    p.policy = kind;
    p.dist = ServiceTimeDist::kBimodal;
    p.load = 0.6;  // headroom for the retransmit storm after each blackout
    p.capacity_rps = capacity[bimodal_index];
    p.shards = args.shards;
    p.chaos = true;
    p.drain = Milliseconds(12);  // cover the retransmit backoff ladder
    const CellResult r = RunCell(p);
    std::printf("chaos %s: sent %" PRIu64 " ok %" PRIu64 " timeouts %" PRIu64
                " resets %" PRIu64 " dups %" PRIu64 "\n",
                ToString(kind), r.sent, r.ok, r.timeouts, r.nic_resets,
                r.dup_execs);
    chaos_json.push_back(JsonObject()
                             .Field("policy", std::string(ToString(kind)))
                             .Field("sent", r.sent)
                             .Field("ok", r.ok)
                             .Field("timeouts", r.timeouts)
                             .Field("nic_resets", r.nic_resets)
                             .Field("duplicate_executions", r.dup_execs)
                             .Render());
    if (r.dup_execs != 0) {
      violation("chaos %s executed %" PRIu64 " sequences more than once",
                ToString(kind), r.dup_execs);
    }
    if (r.nic_resets == 0) {
      violation("chaos %s never crashed the NIC (plan ineffective)",
                ToString(kind));
    }
    if (r.ok == 0) {
      violation("chaos %s served nothing", ToString(kind));
    }
  }

  // --- PDES reproducibility: same cell, different shard count ----------------
  const CellResult gate_again = RunCell(gate_params);
  CellParams p_re = gate_params;
  p_re.shards = args.shards > 1 ? 1 : 4;
  const CellResult re = RunCell(p_re);
  std::printf("\nshard recheck (jbsq/bimodal @ %.1f): shards=%d ok=%" PRIu64
              " execs=%" PRIu64 " | shards=%d ok=%" PRIu64 " execs=%" PRIu64
              "\n",
              gate_load, gate_params.shards, gate_again.ok,
              gate_again.total_execs, p_re.shards, re.ok, re.total_execs);
  if (re.ok != gate_again.ok || re.sent != gate_again.sent ||
      re.total_execs != gate_again.total_execs ||
      re.timeouts != gate_again.timeouts) {
    violation("shards=%d and shards=%d disagree (ok %" PRIu64 " vs %" PRIu64
              ", execs %" PRIu64 " vs %" PRIu64 ")",
              gate_params.shards, p_re.shards, gate_again.ok, re.ok,
              gate_again.total_execs, re.total_execs);
  }

  if (!args.json.empty()) {
    JsonObject config;
    config.Field("seed", args.seed)
        .Field("smoke", args.smoke)
        .Field("shards", args.shards)
        .Field("gate_load", gate_load)
        .Field("jbsq_k", 2)
        .Field("threads_used",
               static_cast<uint64_t>(ShardThreadsUsed(args.shards)));
    JsonObject out;
    out.Field("bench", std::string("dispatch_discipline"))
        .Field("schema_version", 1)
        .Raw("config", config.Render())
        .Raw("results", JsonArray(rows_json))
        .Raw("chaos", JsonArray(chaos_json))
        .Field("violations", violations);
    if (!WriteJsonFile(args.json, out.Render())) {
      return 1;
    }
  }

  if (violations > 0) {
    std::fprintf(stderr, "%d violation(s)\n", violations);
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
