// ENERGY — §5.1: "reducing the polling overhead (both bus traffic and CPU
// spinning) to almost zero and improving energy efficiency."
//
// Compare a kernel-bypass spin core against a Lauberhorn core parked on a
// blocking load (with 15 ms TRYAGAIN fills), across idle and trickle loads.
// Reported: busy CPU time per wall second (spin included — the energy proxy)
// and coherence/PCIe interaction events.
#include "bench/common.h"

namespace lauberhorn {
namespace {

struct Cell {
  double busy_frac = 0;        // busy CPU time / wall time (energy proxy)
  double interactions_per_s = 0;  // device interaction messages per second
  uint64_t completed = 0;
};

Cell Measure(StackKind stack, double rate_rps) {
  EchoSetup setup = EchoSetup::Make(stack, PlatformSpec::EnzianEci(), /*cores=*/4);
  Machine& machine = *setup.machine;
  machine.ResetMeasurement();
  machine.interconnect().ResetStats();
  const Duration window = Milliseconds(200);
  const SimTime start = machine.sim().Now();
  const Duration busy_before = machine.TotalBusyTime();

  std::unique_ptr<OpenLoopGenerator> generator;
  if (rate_rps > 0) {
    OpenLoopGenerator::Config config;
    config.rate_rps = rate_rps;
    config.stop = start + window;
    std::vector<WorkloadTarget> targets = {{setup.echo, 0, 64, 1.0}};
    generator = std::make_unique<OpenLoopGenerator>(machine.sim(), machine.client(),
                                                    targets, config);
    generator->Start();
  }
  machine.sim().RunUntil(start + window);

  Cell cell;
  const double wall = ToSeconds(window);
  cell.busy_frac = ToSeconds(machine.TotalBusyTime() - busy_before) / wall;
  // Device interactions: coherence messages (Lauberhorn) plus PCIe MMIO
  // operations (the DMA NIC's doorbells). Bypass spinning itself produces no
  // bus traffic — it burns CPU instead, which is the busy-cores column.
  const uint64_t interactions = machine.interconnect().stats().TotalMessages() +
                                machine.pcie().mmio_reads() +
                                machine.pcie().mmio_writes();
  cell.interactions_per_s = static_cast<double>(interactions) / wall;
  cell.completed = generator ? generator->completed() : 0;
  return cell;
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  const bool csv = lauberhorn::BenchArgs::Parse(argc, argv).csv;
  using namespace lauberhorn;
  PrintHeader("ENERGY",
              "polling overhead: spin-poll vs blocked load + TRYAGAIN (4 cores)");

  Table table({"stack", "offered load", "busy cores (of 4)", "device msgs/s",
               "completed"});
  for (double rate : {0.0, 1000.0, 10000.0, 100000.0}) {
    for (StackKind stack : {StackKind::kBypass, StackKind::kLauberhorn}) {
      const Cell cell = Measure(stack, rate);
      table.AddRow({ToString(stack),
                    rate == 0 ? std::string("idle") : Table::Num(rate, 0) + " rps",
                    Table::Num(cell.busy_frac, 3), Table::Num(cell.interactions_per_s, 0),
                    Table::Int(static_cast<int64_t>(cell.completed))});
    }
  }
  PrintTable(table, csv);

  std::printf("\nPaper claim (§5.1): a stalled load costs two coherence messages per\n"
              "15 ms TRYAGAIN interval — effectively zero cycles and bus traffic —\n"
              "while bypass burns its dedicated cores regardless of load.\n");
  return 0;
}
