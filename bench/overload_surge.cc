// OVLD — NIC-side overload control under flash-crowd surges.
//
// Per stack: calibrate saturation capacity C with a closed loop, then drive
// an open-loop phase schedule — warmup (0.2 C, the unloaded latency
// reference), baseline (1.0 C), a flash-crowd surge (mult x C with 55% of
// the load concentrated on one service, shifting to a different hot service
// mid-surge), and recovery (0.5 C). Admission control (src/overload) is on:
// per-service token-bucket quotas plus a CoDel-style sojourn gate at each
// stack's shed point. Reported per cell: goodput retention under surge, shed
// fraction and per-reason counts, admitted p50/p99/p99.9 against the
// unloaded p99.9, host-CPU cost per shed, and time-to-recover after the
// surge ends.
//
// A second set of cells composes the surge with the canonical fault plan at
// full intensity (client retransmits + breaker on), asserting that
// at-most-once execution holds while the server is actively shedding.
//
// The paper's claim under test: a NIC that is part of the OS can say "no"
// before a host core is disturbed — the Lauberhorn columns shed at zero
// host-CPU cost while Linux and bypass burn softirq/poll-core cycles per
// rejected request.
//
// --smoke is the CI gate: mult = 5 on all three stacks plus the fault cells,
// asserting >= 80% goodput retention, admitted p99.9 within 10x of the
// unloaded p99.9, a strictly cheaper shed on Lauberhorn, and zero duplicate
// executions under faults.
#include <cmath>
#include <memory>
#include <unordered_map>

#include "bench/common.h"

namespace lauberhorn {
namespace {

constexpr size_t kNumServices = 4;
constexpr Duration kServiceTime = Microseconds(2);

MachineConfig BaseConfig(StackKind stack, uint64_t seed) {
  MachineConfig config;
  config.stack = stack;
  config.platform = PlatformSpec::EnzianEci();
  config.num_cores = 8;
  config.nic_queues = stack == StackKind::kBypass ? 4 : 2;
  config.linux_stack.worker_threads_per_service = 2;
  config.seed = seed;
  return config;
}

void AddEchoServices(Machine& machine, std::vector<const ServiceDef*>& services) {
  for (size_t i = 0; i < kNumServices; ++i) {
    const ServiceDef& svc = machine.AddService(
        ServiceRegistry::MakeEchoService(static_cast<uint32_t>(i + 1),
                                         static_cast<uint16_t>(7000 + i),
                                         kServiceTime),
        /*max_cores=*/2);
    services.push_back(&svc);
  }
}

void StartStack(Machine& machine, const std::vector<const ServiceDef*>& services) {
  machine.Start();
  if (machine.config().stack == StackKind::kLauberhorn) {
    for (const ServiceDef* svc : services) {
      machine.StartHotLoop(*svc);
    }
  }
  machine.sim().RunUntil(Milliseconds(1));
}

// Saturation capacity in requests/s: a closed loop with enough outstanding
// requests to keep every core busy, measured over a settle-then-count window.
double Calibrate(StackKind stack, uint64_t seed) {
  MachineConfig config = BaseConfig(stack, seed);
  Machine machine(std::move(config));
  std::vector<const ServiceDef*> services;
  AddEchoServices(machine, services);
  StartStack(machine, services);

  std::vector<WorkloadTarget> targets;
  for (const ServiceDef* svc : services) {
    targets.push_back({svc, 0, 64, 1.0});
  }
  ClosedLoopGenerator::Config gen_config;
  gen_config.concurrency = 64;
  gen_config.seed = seed;
  ClosedLoopGenerator gen(machine.sim(), machine.client(), targets, gen_config);
  gen.Start();
  machine.sim().RunUntil(machine.sim().Now() + Milliseconds(1));  // settle
  const uint64_t before = gen.completed();
  const Duration window = Milliseconds(3);
  machine.sim().RunUntil(machine.sim().Now() + window);
  const uint64_t delta = gen.completed() - before;
  gen.Stop();
  return static_cast<double>(delta) / ToSeconds(window);
}

struct ShedCounters {
  uint64_t queue = 0;
  uint64_t quota = 0;
  uint64_t sojourn = 0;
  Duration cpu = 0;  // host-CPU time burned saying "no"
  uint64_t total() const { return queue + quota + sojourn; }
};

ShedCounters ReadSheds(Machine& machine, StackKind stack) {
  ShedCounters c;
  switch (stack) {
    case StackKind::kLinux:
      c.queue = machine.linux_stack()->sheds_queue();
      c.quota = machine.linux_stack()->sheds_quota();
      c.sojourn = machine.linux_stack()->sheds_sojourn();
      c.cpu = machine.linux_stack()->shed_cpu_time();
      break;
    case StackKind::kBypass:
      c.queue = machine.bypass()->sheds_queue();
      c.quota = machine.bypass()->sheds_quota();
      c.sojourn = machine.bypass()->sheds_sojourn();
      c.cpu = machine.bypass()->shed_cpu_time();
      break;
    case StackKind::kLauberhorn: {
      const auto& stats = machine.lauberhorn_nic()->stats();
      c.queue = stats.requests_shed_queue;
      c.quota = stats.requests_shed_quota;
      c.sojourn = stats.requests_shed_sojourn;
      c.cpu = 0;  // NIC-side shed: no host core ever sees the request
      break;
    }
  }
  return c;
}

AdmissionConfig MakeAdmission(double capacity_rps) {
  AdmissionConfig admission;
  admission.enabled = true;
  // Per-service quota: 40% of machine capacity each. Under an even mix this
  // admits everything; a flash crowd on one service is clipped to its fair
  // share plus headroom instead of starving the others.
  admission.quota_rps = 0.5 * capacity_rps;
  admission.quota_burst = 64.0;
  admission.sojourn.target = Microseconds(20);
  admission.sojourn.interval = Microseconds(200);
  // Tight depth bound: it backstops the sojourn gate during the interval
  // before dropping engages, keeping even the first surge arrivals' wait to
  // tens of microseconds.
  admission.queue_depth_limit = 8;
  return admission;
}

struct SurgeCell {
  double capacity_rps = 0.0;
  uint64_t surge_sent = 0;
  uint64_t surge_ok = 0;
  uint64_t surge_overloaded = 0;
  double baseline_rate = 0.0;  // goodput during the 1.0 C phase, rps
  double surge_rate = 0.0;     // goodput during the surge phase, rps
  double retention = 0.0;      // surge_rate / baseline_rate
  double shed_fraction = 0.0;  // sheds / arrivals during the surge
  ShedCounters sheds;          // surge-phase deltas
  Duration shed_cpu_per_shed = 0;
  Duration p999_unloaded = 0;
  Duration p50_surge = 0;
  Duration p99_surge = 0;
  Duration p999_surge = 0;
  Duration time_to_recover = 0;
  bool recovered = false;
  uint64_t scale_suppressed = 0;  // Lauberhorn governor cooldown hits
};

SurgeCell MeasureSurge(StackKind stack, double mult, double capacity_rps,
                       uint64_t seed, bool smoke) {
  MachineConfig config = BaseConfig(stack, seed);
  config.admission = MakeAdmission(capacity_rps);
  // Small descriptor rings for the DMA stacks: a surge must drop early at
  // the device, not build hundreds of microseconds of ring residency that
  // admitted requests then sit behind.
  config.nic_ring_entries = 16;
  config.nic_rx_fifo_depth = 8;
  // Harden the Lauberhorn scale-up/RETIRE loop against churn during the
  // flash crowd (no-ops for the other stacks).
  config.runtime.scale_cooldown = Microseconds(100);
  config.runtime.scale_down_ticks = 3;
  Machine machine(std::move(config));
  std::vector<const ServiceDef*> services;
  AddEchoServices(machine, services);
  StartStack(machine, services);

  std::vector<WorkloadTarget> targets;
  for (const ServiceDef* svc : services) {
    targets.push_back({svc, 0, 64, 1.0});
  }
  OpenLoopGenerator::Config gen_config;
  gen_config.rate_rps = 0.2 * capacity_rps;
  gen_config.seed = seed;
  gen_config.start = machine.sim().Now();
  OpenLoopGenerator gen(machine.sim(), machine.client(), targets, gen_config);

  // Phase schedule (smoke halves every window).
  const Duration unit = smoke ? Milliseconds(1) : Milliseconds(2);
  const SimTime t0 = machine.sim().Now();
  const SimTime baseline_start = t0 + unit;
  const SimTime surge_start = baseline_start + unit;
  const SimTime surge_end = surge_start + 2 * unit;
  const SimTime run_end = surge_end + 2 * unit;

  // Admitted-RTT histograms per phase; kOverloaded replies are sheds, not
  // served requests, and stay out of the latency story.
  enum Phase { kWarmup = 0, kBaseline, kSurge, kRecovery };
  auto phase = std::make_shared<int>(kWarmup);
  Histogram hist[4];
  uint64_t ok[4] = {0, 0, 0, 0};
  const Duration bin_width = Microseconds(500);
  std::vector<uint64_t> ok_bins(static_cast<size_t>(run_end / bin_width) + 2, 0);
  gen.on_response = [&, phase](const RpcMessage& msg, Duration rtt) {
    if (msg.status != RpcStatus::kOk) {
      return;
    }
    hist[*phase].Record(rtt);
    ++ok[*phase];
    const size_t bin = static_cast<size_t>(machine.sim().Now() / bin_width);
    if (bin < ok_bins.size()) {
      ++ok_bins[bin];
    }
  };

  SurgeCell cell;
  cell.capacity_rps = capacity_rps;
  uint64_t sent_at_surge_start = 0;
  uint64_t sent_at_surge_end = 0;
  uint64_t overloaded_at_surge_start = 0;
  ShedCounters sheds_at_surge_start;

  machine.sim().ScheduleAt(baseline_start, [&, phase]() {
    *phase = kBaseline;
    gen.SetRate(capacity_rps);
  });
  machine.sim().ScheduleAt(surge_start, [&, phase]() {
    *phase = kSurge;
    sent_at_surge_start = gen.sent();
    overloaded_at_surge_start = machine.client().overloaded();
    sheds_at_surge_start = ReadSheds(machine, stack);
    gen.SetRate(mult * capacity_rps);
    gen.SetWeights({0.55, 0.15, 0.15, 0.15});  // flash crowd on service 1
  });
  machine.sim().ScheduleAt((surge_start + surge_end) / 2, [&]() {
    gen.SetWeights({0.15, 0.55, 0.15, 0.15});  // Zipf shift: new hot service
  });
  machine.sim().ScheduleAt(surge_end, [&, phase]() {
    *phase = kRecovery;
    sent_at_surge_end = gen.sent();
    const ShedCounters now = ReadSheds(machine, stack);
    cell.sheds.queue = now.queue - sheds_at_surge_start.queue;
    cell.sheds.quota = now.quota - sheds_at_surge_start.quota;
    cell.sheds.sojourn = now.sojourn - sheds_at_surge_start.sojourn;
    cell.sheds.cpu = now.cpu - sheds_at_surge_start.cpu;
    cell.surge_overloaded =
        machine.client().overloaded() - overloaded_at_surge_start;
    gen.SetRate(0.5 * capacity_rps);
    gen.SetWeights({1.0, 1.0, 1.0, 1.0});
  });

  gen.Start();
  machine.sim().RunUntil(run_end);
  gen.Stop();
  machine.sim().RunUntil(run_end + unit);  // drain stragglers

  cell.surge_sent = sent_at_surge_end - sent_at_surge_start;
  cell.surge_ok = ok[kSurge];
  cell.baseline_rate = static_cast<double>(ok[kBaseline]) /
                       ToSeconds(surge_start - baseline_start);
  cell.surge_rate =
      static_cast<double>(ok[kSurge]) / ToSeconds(surge_end - surge_start);
  cell.retention =
      cell.baseline_rate > 0.0 ? cell.surge_rate / cell.baseline_rate : 0.0;
  const double arrivals = static_cast<double>(cell.surge_sent);
  cell.shed_fraction =
      arrivals > 0.0 ? static_cast<double>(cell.sheds.total()) / arrivals : 0.0;
  cell.shed_cpu_per_shed =
      cell.sheds.total() > 0
          ? cell.sheds.cpu / static_cast<Duration>(cell.sheds.total())
          : 0;
  cell.p999_unloaded = hist[kWarmup].P999();
  cell.p50_surge = hist[kSurge].P50();
  cell.p99_surge = hist[kSurge].P99();
  cell.p999_surge = hist[kSurge].P999();
  if (stack == StackKind::kLauberhorn) {
    cell.scale_suppressed = machine.lauberhorn_runtime()->scale_suppressed();
  }

  // Time-to-recover: first full 500 us bin after the surge whose goodput is
  // back to >= 80% of the offered recovery rate.
  const double expected_per_bin = 0.5 * capacity_rps * ToSeconds(bin_width);
  for (SimTime t = surge_end; t + bin_width <= run_end; t += bin_width) {
    const size_t bin = static_cast<size_t>(t / bin_width);
    if (bin < ok_bins.size() &&
        static_cast<double>(ok_bins[bin]) >= 0.8 * expected_per_bin) {
      cell.time_to_recover = t + bin_width - surge_end;
      cell.recovered = true;
      break;
    }
  }
  if (!cell.recovered) {
    cell.time_to_recover = run_end - surge_end;
  }
  return cell;
}

// Surge + canonical fault plan at full intensity: retransmits and the
// overload breaker on, a counting handler observing duplicate executions.
struct FaultCell {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t overloaded = 0;
  uint64_t sheds = 0;
  uint64_t dup_execs = 0;
  uint64_t breaker_openings = 0;
  uint64_t suppressed_breaker = 0;
  uint64_t late = 0;
};

ServiceDef MakeCountingService(std::unordered_map<uint64_t, uint32_t>& execs) {
  ServiceDef def;
  def.service_id = 1;
  def.name = "counted-echo";
  def.udp_port = 7000;
  MethodDef method;
  method.method_id = 0;
  method.name = "counted";
  method.request_sig.args = {WireType::kU64, WireType::kBytes};
  method.response_sig.args = {WireType::kU64, WireType::kBytes};
  method.handler = [&execs](const std::vector<WireValue>& args) {
    ++execs[args.at(0).scalar];
    return std::vector<WireValue>{args.at(0), args.at(1)};
  };
  method.SetFixedServiceTime(kServiceTime);
  def.methods[0] = std::move(method);
  return def;
}

FaultCell MeasureFaulted(StackKind stack, double capacity_rps, uint64_t seed,
                         bool smoke) {
  MachineConfig config = BaseConfig(stack, seed);
  config.faults = FaultPlan::Canonical(1.0, seed);
  config.admission = MakeAdmission(capacity_rps);
  config.nic_ring_entries = 16;
  config.nic_rx_fifo_depth = 8;
  config.runtime.scale_cooldown = Microseconds(200);
  config.runtime.scale_down_ticks = 3;
  config.client_retransmit_timeout = Microseconds(300);
  config.client_max_retransmits = 8;
  config.client_backoff_multiplier = 2.0;
  config.client_max_retransmit_timeout = Milliseconds(5);
  config.client_retransmit_jitter = 0.2;
  config.client_retry_budget_per_sec = 50000.0;
  config.client_overload_breaker_threshold = 32;
  config.client_overload_breaker_window = Microseconds(200);
  config.server_dedup = true;
  // The dedup window must cover the retransmit horizon at this arrival rate;
  // an evicted completed entry would let a late retransmit re-execute.
  config.server_dedup_window = 1 << 16;

  std::unordered_map<uint64_t, uint32_t> execs;
  Machine machine(std::move(config));
  const ServiceDef& svc =
      machine.AddService(MakeCountingService(execs),
                         /*max_cores=*/stack == StackKind::kLauberhorn ? 4 : 1);
  machine.Start();
  if (stack == StackKind::kLauberhorn) {
    machine.StartHotLoop(svc);
  }
  machine.sim().RunUntil(Milliseconds(1));

  // 5x the service's fair share of machine capacity, onto one service: well
  // past what it can serve, so shedding is active the whole window.
  const double rate_rps = 5.0 * capacity_rps / kNumServices;
  const Duration window = smoke ? Milliseconds(6) : Milliseconds(12);
  const SimTime stop = machine.sim().Now() + window;
  const std::vector<uint8_t> payload(64, 0xab);

  FaultCell cell;
  auto fire = std::make_shared<Function<void()>>();
  auto seq = std::make_shared<uint64_t>(0);
  Rng gaps(seed ^ 0x9e3779b97f4a7c15ULL);
  *fire = [&machine, &svc, &cell, seq, fire, &gaps, stop, rate_rps, payload]() {
    if (machine.sim().Now() >= stop) {
      return;
    }
    std::vector<WireValue> args = {WireValue::U64((*seq)++),
                                   WireValue::Bytes(payload)};
    machine.client().Call(svc, 0, args,
                          [&cell](const RpcMessage& response, Duration) {
                            if (response.status == RpcStatus::kOk) {
                              ++cell.ok;
                            }
                          });
    machine.sim().Schedule(NanosecondsF(gaps.Exponential(1.0 / rate_rps) * 1e9),
                           [fire]() { (*fire)(); });
  };
  (*fire)();
  machine.sim().RunUntil(stop + Milliseconds(10));

  cell.sent = *seq;
  cell.overloaded = machine.client().overloaded();
  cell.breaker_openings = machine.client().breaker_openings();
  cell.suppressed_breaker = machine.client().retransmits_suppressed_breaker();
  cell.late = machine.client().late_responses();
  cell.sheds = ReadSheds(machine, stack).total();
  for (const auto& [s, count] : execs) {
    if (count > 1) {
      ++cell.dup_execs;
    }
  }
  return cell;
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  using namespace lauberhorn;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("OVLD",
              "admission control and surge-proof degradation across the stacks");

  const std::vector<double> mults =
      args.smoke ? std::vector<double>{5.0} : std::vector<double>{1.0, 2.0, 5.0, 10.0};
  const std::vector<StackKind> stacks = {StackKind::kLinux, StackKind::kBypass,
                                         StackKind::kLauberhorn};

  // Capacity per stack first (cheap, sequential), then the surge + fault
  // cells fan out in parallel.
  std::vector<double> capacity(stacks.size(), 0.0);
  for (size_t s = 0; s < stacks.size(); ++s) {
    capacity[s] = Calibrate(stacks[s], args.seed);
  }

  struct Job {
    size_t stack_index;
    double mult;
    bool faulted;
  };
  std::vector<Job> jobs;
  for (size_t s = 0; s < stacks.size(); ++s) {
    for (double mult : mults) {
      jobs.push_back({s, mult, false});
    }
  }
  for (size_t s = 0; s < stacks.size(); ++s) {
    jobs.push_back({s, 5.0, true});
  }

  std::vector<SurgeCell> surge_cells(jobs.size());
  std::vector<FaultCell> fault_cells(jobs.size());
  const std::vector<int> done = RunTrialsParallel(
      static_cast<int>(jobs.size()), [&](int i) {
        const Job& job = jobs[static_cast<size_t>(i)];
        if (job.faulted) {
          fault_cells[static_cast<size_t>(i)] =
              MeasureFaulted(stacks[job.stack_index], capacity[job.stack_index],
                             args.seed, args.smoke);
        } else {
          surge_cells[static_cast<size_t>(i)] =
              MeasureSurge(stacks[job.stack_index], job.mult,
                           capacity[job.stack_index], args.seed, args.smoke);
        }
        return 0;
      });
  (void)done;

  bool violation = false;
  std::vector<std::string> json_rows;

  Table table({"stack", "mult", "cap (krps)", "retention", "shed frac",
               "shed q/quota/soj", "shed-cpu/shed (ns)", "p50 (us)", "p99 (us)",
               "p99.9 (us)", "idle p99.9", "recover (us)", "suppr"});
  // Per-shed host CPU at the 5x point, for the cross-stack cost gate.
  std::vector<Duration> shed_cpu_at_5x(stacks.size(), 0);
  std::vector<uint64_t> sheds_at_5x(stacks.size(), 0);
  for (size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    if (job.faulted) {
      continue;
    }
    const SurgeCell& cell = surge_cells[i];
    const StackKind stack = stacks[job.stack_index];
    table.AddRow(
        {ToString(stack), Table::Num(job.mult, 0),
         Table::Num(cell.capacity_rps / 1000.0, 0), Table::Num(cell.retention, 3),
         Table::Num(cell.shed_fraction, 3),
         Table::Int(static_cast<int64_t>(cell.sheds.queue)) + "/" +
             Table::Int(static_cast<int64_t>(cell.sheds.quota)) + "/" +
             Table::Int(static_cast<int64_t>(cell.sheds.sojourn)),
         Table::Num(static_cast<double>(cell.shed_cpu_per_shed) / 1000.0, 1),
         Us(cell.p50_surge), Us(cell.p99_surge), Us(cell.p999_surge),
         Us(cell.p999_unloaded),
         cell.recovered ? Us(cell.time_to_recover) : std::string(">window"),
         Table::Int(static_cast<int64_t>(cell.scale_suppressed))});
    JsonObject row;
    row.Field("stack", ToString(stack))
        .Field("mult", job.mult)
        .Field("capacity_rps", cell.capacity_rps)
        .Field("retention", cell.retention)
        .Field("shed_fraction", cell.shed_fraction)
        .Field("sheds_queue", cell.sheds.queue)
        .Field("sheds_quota", cell.sheds.quota)
        .Field("sheds_sojourn", cell.sheds.sojourn)
        .Field("shed_cpu_per_shed_ns",
               static_cast<double>(cell.shed_cpu_per_shed) / 1000.0)
        .Field("p50_surge_us", ToMicroseconds(cell.p50_surge))
        .Field("p99_surge_us", ToMicroseconds(cell.p99_surge))
        .Field("p999_surge_us", ToMicroseconds(cell.p999_surge))
        .Field("p999_unloaded_us", ToMicroseconds(cell.p999_unloaded))
        .Field("time_to_recover_us", ToMicroseconds(cell.time_to_recover))
        .Field("recovered", cell.recovered)
        .Field("scale_suppressed", cell.scale_suppressed);
    json_rows.push_back(row.Render());

    if (job.mult >= 5.0 && job.mult <= 5.0) {
      shed_cpu_at_5x[job.stack_index] = cell.shed_cpu_per_shed;
      sheds_at_5x[job.stack_index] = cell.sheds.total();
    }
    // Gates at the 5x point (the ISSUE's acceptance criteria).
    if (job.mult == 5.0) {
      if (cell.retention < 0.8) {
        std::fprintf(stderr,
                     "VIOLATION: %s at 5x retained only %.3f of saturation "
                     "goodput (floor 0.8)\n",
                     ToString(stack).c_str(), cell.retention);
        violation = true;
      }
      if (cell.p999_surge > 10 * cell.p999_unloaded) {
        std::fprintf(stderr,
                     "VIOLATION: %s admitted p99.9 under surge (%.1f us) is "
                     "more than 10x the unloaded p99.9 (%.1f us)\n",
                     ToString(stack).c_str(), ToMicroseconds(cell.p999_surge),
                     ToMicroseconds(cell.p999_unloaded));
        violation = true;
      }
      if (cell.sheds.total() == 0) {
        std::fprintf(stderr, "VIOLATION: %s shed nothing at 5x offered load\n",
                     ToString(stack).c_str());
        violation = true;
      }
      if (cell.surge_ok == 0) {
        std::fprintf(stderr, "VIOLATION: %s served nothing during the surge\n",
                     ToString(stack).c_str());
        violation = true;
      }
    }
  }
  PrintTable(table, args.csv);

  // Lauberhorn must reject strictly cheaper than the host-mediated stacks:
  // its shed never touches a host core, theirs burn softirq/poll cycles.
  const size_t lauberhorn_index = 2;
  for (size_t s = 0; s < stacks.size(); ++s) {
    if (s == lauberhorn_index || sheds_at_5x[s] == 0) {
      continue;
    }
    if (shed_cpu_at_5x[lauberhorn_index] >= shed_cpu_at_5x[s]) {
      std::fprintf(stderr,
                   "VIOLATION: lauberhorn per-shed host CPU (%.1f ns) is not "
                   "below %s (%.1f ns)\n",
                   static_cast<double>(shed_cpu_at_5x[lauberhorn_index]) / 1000.0,
                   ToString(stacks[s]).c_str(),
                   static_cast<double>(shed_cpu_at_5x[s]) / 1000.0);
      violation = true;
    }
  }

  std::printf("\n");
  Table fault_table({"stack", "sent", "ok", "overloaded", "sheds", "late",
                     "breaker", "suppr-brk", "dup-execs"});
  for (size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    if (!job.faulted) {
      continue;
    }
    const FaultCell& cell = fault_cells[i];
    const StackKind stack = stacks[job.stack_index];
    fault_table.AddRow({ToString(stack), Table::Int(static_cast<int64_t>(cell.sent)),
                        Table::Int(static_cast<int64_t>(cell.ok)),
                        Table::Int(static_cast<int64_t>(cell.overloaded)),
                        Table::Int(static_cast<int64_t>(cell.sheds)),
                        Table::Int(static_cast<int64_t>(cell.late)),
                        Table::Int(static_cast<int64_t>(cell.breaker_openings)),
                        Table::Int(static_cast<int64_t>(cell.suppressed_breaker)),
                        Table::Int(static_cast<int64_t>(cell.dup_execs))});
    JsonObject row;
    row.Field("stack", ToString(stack))
        .Field("faulted", true)
        .Field("sent", cell.sent)
        .Field("goodput", cell.ok)
        .Field("overloaded", cell.overloaded)
        .Field("sheds", cell.sheds)
        .Field("late_responses", cell.late)
        .Field("breaker_openings", cell.breaker_openings)
        .Field("retransmits_suppressed_breaker", cell.suppressed_breaker)
        .Field("duplicate_executions", cell.dup_execs);
    json_rows.push_back(row.Render());

    if (cell.dup_execs != 0) {
      std::fprintf(stderr,
                   "VIOLATION: %s executed %llu sequences more than once under "
                   "faults + overload\n",
                   ToString(stack).c_str(),
                   static_cast<unsigned long long>(cell.dup_execs));
      violation = true;
    }
    if (cell.ok == 0) {
      std::fprintf(stderr,
                   "VIOLATION: %s served nothing under faults + overload\n",
                   ToString(stack).c_str());
      violation = true;
    }
  }
  PrintTable(fault_table, args.csv);

  if (!args.json.empty()) {
    JsonObject doc;
    doc.Field("bench", std::string("OVLD"))
        .Field("seed", args.seed)
        .Field("smoke", args.smoke)
        .Raw("rows", JsonArray(json_rows));
    if (!WriteJsonFile(args.json, doc.Render())) {
      return 1;
    }
  }

  std::printf(
      "\nExpected shape: all three stacks hold goodput near capacity while the\n"
      "offered load runs to 10x (retention stays high, sheds absorb the rest);\n"
      "admitted latency stays bounded because the sojourn gate sheds instead of\n"
      "queueing. The shed-cpu column is the paper's point: Lauberhorn says \"no\"\n"
      "in the NIC for free, Linux and bypass burn host cycles per rejection.\n");
  return violation ? 1 : 0;
}
