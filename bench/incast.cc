// INCST: N->1 incast survival with NIC-driven congestion control
// (DESIGN.md §15, EXPERIMENTS.md).
//
// N sender machines aim synchronized request bursts at one Lauberhorn
// receiver across the queued fabric (src/net/fabric). The receiver's egress
// port has a finite buffer, so the classic incast collapse is reproducible:
// with the seed transport (retransmit-only, PR 2) a 32-sender burst
// overflows the port queue, the tail is dropped, every victim retransmits
// in lockstep a full RTO later, and goodput is set by the timeout ladder
// instead of the wire.
//
// With congestion control on (--cc is implicit; both variants always run):
//   * senders mark their frames ECT(0); the fabric CE-marks ECT arrivals
//     when the egress queue is at/above K (DCTCP-style instantaneous depth),
//   * the receiver NIC echoes CE and attaches a receiver-driven grant
//     (endpoint queue headroom / active senders) to every response,
//   * each sender runs a per-destination DCTCP window capped by the grant;
//     surplus burst requests are deferred locally, not dropped in-fabric.
//
// Cells: N in {2,8,32[,64]} senders, cc off vs cc on, closed-loop bursts of
// 16 per sender. The cc cell at the gate size also reruns under a different
// shard count to prove PDES reproducibility.
//
// --smoke gates (exit 1 + VIOLATION on stderr on failure):
//   - cc at 32->1 (and 64->1 in the full run): zero timeouts and zero
//     timeout-driven retransmits (grants + window pacing, not the retry
//     ladder, carry the burst)
//   - cc goodput at 32->1 >= 2x the retransmit-only baseline
//   - cc fabric tail drops at 32->1 == 0 (bounded by pacing; the baseline
//     must show drops or the cell is not an incast at all)
//   - fabric ECN marks > 0 and receiver grants > 0 in the cc run (the
//     mechanism is actually exercised, not bypassed)
//   - sequential and sharded cc runs agree exactly (ok / timeouts / drops)
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/core/testbed.h"
#include "src/sim/shard.h"

namespace lauberhorn {
namespace {

struct CellParams {
  int senders = 2;
  bool cc = false;
  // Requests per sender per synchronized round. Sized so a round at 32
  // senders (32 x 64 = 2048 frames) dwarfs the 128-deep egress buffer:
  // without pacing most of the round is dropped in-fabric at once.
  int burst = 64;
  // Round period. Every sender fires its burst at the same instants
  // (partition-aggregate style). The aggregate offered load at 32 senders
  // (2048 / 1.5ms = 1.37 Mrps) sits at ~60% of receiver capacity, so the
  // cc run can carry all of it; the baseline loses most of each round in
  // the fabric and burns the rest of the period in RTO storms.
  Duration period = Microseconds(1500);
  Duration measure = Milliseconds(10);
  Duration warmup = Milliseconds(2);
  // Covers the worst final-expiry chain (1ms + 2ms + 4ms backoff ladder).
  Duration drain = Milliseconds(8);
  uint64_t seed = 1;
  int shards = 1;
};

struct CellResult {
  int senders = 0;
  bool cc = false;
  int shards = 1;
  uint64_t ok = 0;              // measured-window completions
  uint64_t bursts = 0;          // completed bursts across all senders
  double goodput_rps = 0;
  Duration p50 = 0, p99 = 0;
  uint64_t timeouts = 0;        // summed over sender clients (whole run)
  uint64_t retransmits = 0;
  uint64_t fabric_drops = 0;    // egress tail drops across all ports
  uint64_t fabric_marks = 0;    // CE marks applied by the fabric
  uint64_t grants = 0;          // grants issued by the receiver NIC
  uint64_t marks_seen = 0;      // echoes/CE observed by the sender clients
  uint64_t deferrals = 0;       // sends parked by the client window
};

ServiceDef MakeEchoU64(uint32_t id, uint16_t port, Duration service_time) {
  ServiceDef def;
  def.service_id = id;
  def.name = "incast";
  def.udp_port = port;
  MethodDef echo;
  echo.method_id = 0;
  echo.request_sig.args = {WireType::kU64};
  echo.response_sig.args = {WireType::kU64};
  echo.handler = [](const std::vector<WireValue>& args) {
    return std::vector<WireValue>{WireValue::U64(args[0].scalar)};
  };
  echo.SetFixedServiceTime(service_time);
  def.methods[0] = std::move(echo);
  return def;
}

CellResult RunCell(const CellParams& p) {
  TestbedConfig tb;
  tb.shards = p.shards;
  // A deliberately shallow receiver port: deep enough that paced windows
  // (<= 2 per sender at first flight) never overflow it, shallow enough
  // that an unpaced 32x16 burst sheds most of its tail.
  tb.fabric.port_queue_limit = 128;
  tb.fabric.port_ecn_threshold = 32;
  Testbed testbed(tb);

  MachineConfig base;
  base.stack = StackKind::kLauberhorn;
  base.num_cores = 8;
  // The PR 2 reliability floor, shared by both variants: the cc run must
  // win by not needing it, not by it being absent. The RTO sits two orders
  // of magnitude above the uncongested RTT — the classic incast regime,
  // where every drop stalls its closed-loop burst for a full timeout and
  // the receiver idles (the goodput collapse the grants are meant to avoid).
  base.client_retransmit_timeout = Milliseconds(1);
  base.client_max_retransmits = 2;
  base.server_dedup = true;
  base.admission.enabled = true;
  base.admission.queue_depth_limit = 64;
  if (p.cc) {
    base.client_congestion = true;
    // Homa-style conservative first flight: one unscheduled request, then
    // grants + additive increase open the window.
    base.client_cc_initial_window = 2.0;
    base.client_cc_max_window = 64.0;
    base.client_cc_grant_ttl = Microseconds(200);
  }

  // Machine 0 is the receiver; 1..N are senders (their servers idle).
  std::vector<Machine*> machines;
  for (int m = 0; m <= p.senders; ++m) {
    MachineConfig config = base;
    config.seed = p.seed + static_cast<uint64_t>(m) * 977;
    machines.push_back(&testbed.AddMachine(config));
  }
  const ServiceDef& echo =
      machines[0]->AddService(MakeEchoU64(1, 7000, Nanoseconds(300)),
                              /*max_cores=*/4);
  for (Machine* m : machines) {
    m->Start();
  }
  machines[0]->StartHotLoop(echo);
  const uint32_t receiver_ip = machines[0]->config().server_ip;

  const SimTime t_start = testbed.sim().Now() + Milliseconds(1);
  const SimTime t_measure = t_start + p.warmup;
  const SimTime t_stop = t_measure + p.measure;

  // One driver per sender, living entirely on its machine's shard: fire
  // `burst` requests at every round boundary, open-loop. All senders share
  // the same round clock, so every round is a fresh synchronized incast —
  // the partition-aggregate pattern that collapses loss-based transports.
  struct Driver {
    Simulator* sim = nullptr;
    RpcClient* client = nullptr;
    int burst = 0;
    Duration period = 0;
    uint64_t ok = 0;
    uint64_t bursts = 0;
    Histogram rtt;
    Callback fire;
  };
  std::vector<std::unique_ptr<Driver>> drivers;
  for (int m = 1; m <= p.senders; ++m) {
    auto driver = std::make_unique<Driver>();
    Driver* d = driver.get();
    d->sim = &machines[static_cast<size_t>(m)]->sim();
    d->client = &machines[static_cast<size_t>(m)]->client();
    d->burst = p.burst;
    d->period = p.period;
    d->fire = [d, receiver_ip, t_measure, t_stop]() {
      Simulator& sim = *d->sim;
      if (sim.Now() >= t_stop) {
        return;
      }
      for (int i = 0; i < d->burst; ++i) {
        std::vector<uint8_t> payload;
        MarshalArgs(MethodSignature{{WireType::kU64}},
                    std::vector<WireValue>{WireValue::U64(d->bursts)}, payload);
        d->client->CallRawTo(
            receiver_ip, 7000, 1, 0, std::move(payload),
            [d, t_measure, t_stop](const RpcMessage& r, Duration rtt) {
              if (r.status == RpcStatus::kOk && d->sim->Now() >= t_measure &&
                  d->sim->Now() < t_stop) {
                ++d->ok;
                d->rtt.Record(rtt);
              }
            });
      }
      ++d->bursts;
      sim.Schedule(d->period, [d] { d->fire(); });
    };
    d->sim->ScheduleAt(t_start, [d] { d->fire(); });
    drivers.push_back(std::move(driver));
  }

  testbed.RunUntil(t_stop + p.drain);

  CellResult result;
  result.senders = p.senders;
  result.cc = p.cc;
  result.shards = p.shards;
  Histogram rtt;
  for (const auto& d : drivers) {
    result.ok += d->ok;
    result.bursts += d->bursts;
    rtt.Merge(d->rtt);
  }
  result.goodput_rps = static_cast<double>(result.ok) / ToSeconds(p.measure);
  result.p50 = rtt.P50();
  result.p99 = rtt.P99();
  for (int m = 1; m <= p.senders; ++m) {
    const RpcClient& client = machines[static_cast<size_t>(m)]->client();
    result.timeouts += client.timeouts();
    result.retransmits += client.retransmits();
    result.marks_seen += client.cc_marks_seen();
    result.deferrals += client.cc_deferrals();
  }
  MetricsRegistry metrics;
  testbed.ExportMetrics(metrics);
  result.fabric_drops = metrics.Counter("fabric/queue_drops");
  result.fabric_marks = metrics.Counter("fabric/ecn_marked");
  result.grants = metrics.Counter("m0/nic/grants_issued");
  return result;
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  using namespace lauberhorn;
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("INCST",
              "N->1 incast: ECN marking + receiver grants vs retransmit-only");

  const bool smoke = args.smoke;
  CellParams base;
  base.seed = args.seed;
  base.measure = smoke ? Milliseconds(10) : Milliseconds(30);

  const std::vector<int> sizes =
      smoke ? std::vector<int>{2, 8, 32} : std::vector<int>{2, 8, 32, 64};
  const std::vector<int> gate_sizes =
      smoke ? std::vector<int>{32} : std::vector<int>{32, 64};

  Table table({"senders", "cc", "goodput_krps", "vs_off", "p50_us", "p99_us",
               "timeouts", "rexmits", "fab_drops", "fab_marks", "grants",
               "deferrals"});
  std::vector<std::string> cells_json;
  // Keyed by sender count for the gates.
  std::vector<CellResult> off_results, cc_results;
  for (int n : sizes) {
    CellParams p_off = base;
    p_off.senders = n;
    p_off.cc = false;
    p_off.shards = args.shards;
    const CellResult off = RunCell(p_off);
    CellParams p_cc = p_off;
    p_cc.cc = true;
    const CellResult cc = RunCell(p_cc);
    off_results.push_back(off);
    cc_results.push_back(cc);
    for (const CellResult& r : {off, cc}) {
      const double vs_off =
          off.goodput_rps > 0 ? r.goodput_rps / off.goodput_rps : 0;
      table.AddRow({Table::Int(n), r.cc ? "on" : "off",
                    Table::Num(r.goodput_rps / 1e3), Table::Num(vs_off),
                    Us(r.p50), Us(r.p99),
                    Table::Int(static_cast<int64_t>(r.timeouts)),
                    Table::Int(static_cast<int64_t>(r.retransmits)),
                    Table::Int(static_cast<int64_t>(r.fabric_drops)),
                    Table::Int(static_cast<int64_t>(r.fabric_marks)),
                    Table::Int(static_cast<int64_t>(r.grants)),
                    Table::Int(static_cast<int64_t>(r.deferrals))});
      cells_json.push_back(JsonObject()
                               .Field("senders", n)
                               .Field("cc", r.cc)
                               .Field("goodput_rps", r.goodput_rps)
                               .Field("vs_off", vs_off)
                               .Field("p99_us", ToMicroseconds(r.p99))
                               .Field("timeouts", r.timeouts)
                               .Field("retransmits", r.retransmits)
                               .Field("fabric_drops", r.fabric_drops)
                               .Field("fabric_marks", r.fabric_marks)
                               .Field("grants", r.grants)
                               .Render());
    }
  }
  PrintTable(table, args.csv);

  // PDES reproducibility: rerun the cc gate cell at a different shard count
  // and require bit-identical observables. (With --shards 1 the recheck runs
  // sharded; with --shards N it runs sequentially.)
  CellParams p_re = base;
  p_re.senders = gate_sizes.front();
  p_re.cc = true;
  p_re.shards = args.shards > 1 ? 1 : 4;
  const CellResult re = RunCell(p_re);
  const CellResult* gate_cc = nullptr;
  for (size_t i = 0; i < cc_results.size(); ++i) {
    if (cc_results[i].senders == gate_sizes.front()) {
      gate_cc = &cc_results[i];
    }
  }
  std::printf("\nshard recheck (cc, %d senders): shards=%d ok=%" PRIu64
              " timeouts=%" PRIu64 " drops=%" PRIu64 " | shards=%d ok=%" PRIu64
              " timeouts=%" PRIu64 " drops=%" PRIu64 "\n",
              p_re.senders, gate_cc->shards, gate_cc->ok, gate_cc->timeouts,
              gate_cc->fabric_drops, re.shards, re.ok, re.timeouts,
              re.fabric_drops);

  // --- Gates ----------------------------------------------------------------
  int violations = 0;
  auto violation = [&](const char* fmt, auto... vals) {
    std::fprintf(stderr, "VIOLATION: ");
    std::fprintf(stderr, fmt, vals...);
    std::fprintf(stderr, "\n");
    ++violations;
  };
  for (size_t i = 0; i < cc_results.size(); ++i) {
    const CellResult& off = off_results[i];
    const CellResult& cc = cc_results[i];
    bool gated = false;
    for (int g : gate_sizes) {
      gated = gated || cc.senders == g;
    }
    if (!gated) {
      continue;
    }
    if (cc.timeouts != 0) {
      violation("cc %d->1: %" PRIu64 " timeouts (want 0)", cc.senders,
                cc.timeouts);
    }
    if (cc.retransmits != 0) {
      violation("cc %d->1: %" PRIu64 " timeout-driven retransmits (want 0)",
                cc.senders, cc.retransmits);
    }
    if (cc.fabric_drops != 0) {
      violation("cc %d->1: %" PRIu64 " fabric tail drops (want 0)", cc.senders,
                cc.fabric_drops);
    }
    if (off.fabric_drops == 0) {
      violation("baseline %d->1 shed nothing in-fabric: not an incast",
                off.senders);
    }
    if (cc.goodput_rps < 2.0 * off.goodput_rps) {
      violation("cc %d->1 goodput %.0f < 2x baseline %.0f", cc.senders,
                cc.goodput_rps, off.goodput_rps);
    }
    if (cc.fabric_marks == 0) {
      violation("cc %d->1: fabric never CE-marked (threshold ineffective)",
                cc.senders);
    }
    if (cc.grants == 0) {
      violation("cc %d->1: receiver issued no grants", cc.senders);
    }
  }
  if (gate_cc == nullptr) {
    violation("gate cell missing");
  } else if (re.ok != gate_cc->ok || re.timeouts != gate_cc->timeouts ||
             re.fabric_drops != gate_cc->fabric_drops) {
    violation("shards=%d and shards=%d disagree (ok %" PRIu64 " vs %" PRIu64
              ", timeouts %" PRIu64 " vs %" PRIu64 ")",
              gate_cc->shards, re.shards, gate_cc->ok, re.ok,
              gate_cc->timeouts, re.timeouts);
  }

  if (!args.json.empty()) {
    JsonObject config;
    config.Field("seed", args.seed)
        .Field("smoke", smoke)
        .Field("shards", args.shards)
        .Field("threads_used",
               static_cast<uint64_t>(ShardThreadsUsed(args.shards)));
    JsonObject out;
    out.Field("bench", std::string("incast"))
        .Field("schema_version", 1)
        .Raw("config", config.Render())
        .Raw("results", JsonArray(cells_json))
        .Field("violations", violations);
    if (!WriteJsonFile(args.json, out.Render())) {
      return 1;
    }
  }

  if (violations > 0) {
    std::fprintf(stderr, "%d violation(s)\n", violations);
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
