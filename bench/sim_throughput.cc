// SIMTP — event-engine throughput: events/sec through the Simulator hot path
// (schedule → heap → dispatch), the quantity that bounds every experiment in
// this repository (a simulated second at 100 krps is ~10^6 events).
//
// The seed engine (std::priority_queue<Event> + lazy-deletion unordered_set,
// std::function callbacks) is embedded below as LegacySimulator so the
// old-vs-new comparison is reproducible on any machine, forever — the
// speedup reported in BENCH_sim.json is measured, not remembered.
//
// Workloads:
//   schedule_fire  pre-schedule N events at random times, drain
//   timer_churn    K self-rescheduling timers firing M times total
//   cancel_churn   schedule + cancel pairs with a trickle of survivors
//   capture48      schedule/fire with 48-byte captures (SBO vs heap alloc)
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <queue>
#include <unordered_set>

#include "bench/common.h"
#include "src/sim/random.h"
#include "src/sim/shard.h"

namespace lauberhorn {
namespace {

// -- The seed engine, verbatim semantics ---------------------------------------

using LegacyEventId = uint64_t;

class LegacySimulator {
 public:
  SimTime Now() const { return now_; }

  LegacyEventId Schedule(Duration delay, std::function<void()> fn) {
    if (delay < 0) {
      delay = 0;
    }
    const SimTime when = now_ + delay;
    const LegacyEventId id = next_id_++;
    queue_.push(Event{when, id, std::move(fn)});
    pending_.insert(id);
    return id;
  }

  bool Cancel(LegacyEventId id) { return pending_.erase(id) != 0; }

  bool Step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      if (pending_.erase(ev.id) == 0) {
        continue;
      }
      now_ = ev.when;
      ++events_executed_;
      ev.fn();
      return true;
    }
    return false;
  }

  void RunUntilIdle() {
    while (Step()) {
    }
  }

  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    SimTime when = 0;
    LegacyEventId id = 0;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;
    }
  };
  SimTime now_ = 0;
  LegacyEventId next_id_ = 1;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<LegacyEventId> pending_;
};

// -- Workloads (templated over the engine) -------------------------------------

struct WorkloadSize {
  uint64_t schedule_fire = 400000;
  uint64_t timer_churn = 800000;
  uint64_t cancel_churn = 400000;
  uint64_t capture48 = 400000;
  uint64_t pdes = 3200000;
};

template <typename Sim>
uint64_t ScheduleFire(uint64_t n, uint64_t seed) {
  Sim sim;
  Rng rng(seed);
  uint64_t sink = 0;
  for (uint64_t i = 0; i < n; ++i) {
    sim.Schedule(static_cast<Duration>(rng.UniformInt(0, 10000000)),
                 [&sink] { ++sink; });
  }
  sim.RunUntilIdle();
  return sim.events_executed() + (sink & 1);
}

template <typename Sim>
uint64_t TimerChurn(uint64_t total, uint64_t seed) {
  Sim sim;
  Rng rng(seed);
  constexpr int kTimers = 64;
  uint64_t remaining = total;
  // Each timer re-arms itself until the global budget is spent — the steady
  // state of every NIC/OS model in this repo (retransmit timers, polls).
  struct Timer {
    Sim* sim;
    Rng* rng;
    uint64_t* remaining;
    void operator()() const {
      if (*remaining == 0) {
        return;
      }
      --*remaining;
      auto self = *this;
      sim->Schedule(static_cast<Duration>(rng->UniformInt(100, 5000)), self);
    }
  };
  for (int i = 0; i < kTimers; ++i) {
    Timer t{&sim, &rng, &remaining};
    sim.Schedule(static_cast<Duration>(rng.UniformInt(100, 5000)), t);
  }
  sim.RunUntilIdle();
  return sim.events_executed();
}

template <typename Sim>
uint64_t CancelChurn(uint64_t n, uint64_t seed) {
  Sim sim;
  Rng rng(seed);
  uint64_t sink = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const auto victim = sim.Schedule(
        static_cast<Duration>(rng.UniformInt(1000, 2000000)), [&sink] { ++sink; });
    sim.Cancel(victim);
    if (i % 16 == 0) {
      sim.Schedule(static_cast<Duration>(rng.UniformInt(0, 1000)),
                   [&sink] { ++sink; });
      sim.Step();
    }
  }
  sim.RunUntilIdle();
  return n + sim.events_executed();
}

template <typename Sim>
uint64_t Capture48(uint64_t n, uint64_t seed) {
  Sim sim;
  Rng rng(seed);
  uint64_t sink = 0;
  struct Payload {
    uint64_t a, b, c, d, e;
    uint64_t* out;
  };
  for (uint64_t i = 0; i < n; ++i) {
    Payload p{i, i + 1, i + 2, i + 3, i + 4, &sink};
    sim.Schedule(static_cast<Duration>(rng.UniformInt(0, 1000000)),
                 [p] { *p.out += p.a + p.b + p.c + p.d + p.e; });
    if (i % 4 == 0) {
      sim.Step();
    }
  }
  sim.RunUntilIdle();
  return sim.events_executed() + (sink & 1);
}

// -- PDES workload (the sharded engine, src/sim/shard.h) -----------------------
//
// 64 logical nodes of self-rescheduling timers spread round-robin over N
// shards; every 8th fire posts a cross-shard message one lookahead window
// ahead (the shape machine-wire traffic has in a sharded Testbed). shards=1
// runs the identical workload on the inline sequential path, so the
// trajectory measures parallel speedup, not workload drift.
struct PdesNode {
  ShardedEngine* engine = nullptr;
  int shard = 0;
  int peer_shard = 0;
  Rng rng{1};
  uint64_t remaining = 0;
  uint64_t next_key = 0;

  void Fire() {
    if (remaining == 0) {
      return;
    }
    --remaining;
    Simulator& sim = engine->shard(shard);
    if (peer_shard != shard && remaining % 8 == 0) {
      const SimTime when = sim.Now() + engine->lookahead() +
                           static_cast<SimTime>(rng.UniformInt(0, 1000));
      engine->Post(shard, peer_shard, when, next_key++, [] {});
    }
    sim.Schedule(static_cast<Duration>(rng.UniformInt(100, 5000)),
                 [this] { Fire(); });
  }
};

uint64_t PdesWorkload(int shards, uint64_t total, uint64_t seed) {
  ShardedEngine engine(shards);
  constexpr int kNodes = 64;
  std::vector<std::unique_ptr<PdesNode>> nodes;
  nodes.reserve(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    auto node = std::make_unique<PdesNode>();
    node->engine = &engine;
    node->shard = i % shards;
    node->peer_shard = (node->shard + 1) % shards;
    node->rng = Rng(seed + static_cast<uint64_t>(i));
    node->remaining = total / kNodes;
    node->next_key = static_cast<uint64_t>(i) << 32;
    PdesNode* raw = node.get();
    engine.shard(node->shard)
        .Schedule(static_cast<Duration>(raw->rng.UniformInt(100, 5000)),
                  [raw] { raw->Fire(); });
    nodes.push_back(std::move(node));
  }
  engine.RunUntil(Seconds(1));  // far past the last fire; exits at idle
  uint64_t events = 0;
  for (int s = 0; s < shards; ++s) {
    events += engine.shard(s).events_executed();
  }
  return events;
}

struct Measurement {
  std::string workload;
  std::string engine;
  uint64_t events = 0;
  double seconds = 0;
  double events_per_sec = 0;
};

template <typename Sim>
Measurement Measure(const std::string& workload, const std::string& engine,
                    uint64_t n, uint64_t seed) {
  const auto start = std::chrono::steady_clock::now();
  uint64_t events = 0;
  if (workload == "schedule_fire") {
    events = ScheduleFire<Sim>(n, seed);
  } else if (workload == "timer_churn") {
    events = TimerChurn<Sim>(n, seed);
  } else if (workload == "cancel_churn") {
    events = CancelChurn<Sim>(n, seed);
  } else {
    events = Capture48<Sim>(n, seed);
  }
  const auto end = std::chrono::steady_clock::now();
  Measurement m;
  m.workload = workload;
  m.engine = engine;
  m.events = events;
  m.seconds = std::chrono::duration<double>(end - start).count();
  m.events_per_sec = static_cast<double>(events) / m.seconds;
  return m;
}

uint64_t SizeOf(const WorkloadSize& sizes, const std::string& workload) {
  if (workload == "schedule_fire") return sizes.schedule_fire;
  if (workload == "timer_churn") return sizes.timer_churn;
  if (workload == "cancel_churn") return sizes.cancel_churn;
  return sizes.capture48;
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  using namespace lauberhorn;
  BenchArgs args = BenchArgs::Parse(argc, argv);
  if (args.trials < 1) {
    args.trials = 1;
  }
  WorkloadSize sizes;
  if (args.smoke) {
    sizes = WorkloadSize{20000, 40000, 20000, 20000, 320000};
  }
  PrintHeader("SIMTP", "event-engine throughput, slab/4-ary heap vs seed engine");

  const std::vector<std::string> workloads = {"schedule_fire", "timer_churn",
                                              "cancel_churn", "capture48"};

  // Trials fan out across threads (each trial owns its simulators); the
  // per-workload result is the best trial, which is the least-noisy estimator
  // of the engine's actual cost on a shared machine.
  struct TrialResult {
    std::vector<Measurement> rows;
  };
  const int trials = args.trials;
  const uint64_t base_seed = args.seed;
  const auto trial_results = RunTrialsParallel(trials, [&](int trial) {
    TrialResult r;
    for (const std::string& w : workloads) {
      const uint64_t n = SizeOf(sizes, w);
      const uint64_t seed = base_seed + static_cast<uint64_t>(trial);
      r.rows.push_back(Measure<LegacySimulator>(w, "legacy", n, seed));
      r.rows.push_back(Measure<Simulator>(w, "slab4", n, seed));
    }
    return r;
  });

  auto best = [&](const std::string& workload, const std::string& engine) {
    Measurement best_m;
    for (const TrialResult& tr : trial_results) {
      for (const Measurement& m : tr.rows) {
        if (m.workload == workload && m.engine == engine &&
            m.events_per_sec > best_m.events_per_sec) {
          best_m = m;
        }
      }
    }
    return best_m;
  };

  Table table({"workload", "events", "legacy (Mev/s)", "slab4 (Mev/s)", "speedup"});
  std::vector<std::string> json_rows;
  double speedup_log_sum = 0;
  for (const std::string& w : workloads) {
    const Measurement legacy = best(w, "legacy");
    const Measurement slab = best(w, "slab4");
    const double speedup = slab.events_per_sec / legacy.events_per_sec;
    speedup_log_sum += std::log(speedup);
    table.AddRow({w, Table::Int(static_cast<int64_t>(slab.events)),
                  Table::Num(legacy.events_per_sec / 1e6, 2),
                  Table::Num(slab.events_per_sec / 1e6, 2),
                  Table::Num(speedup, 2)});
    json_rows.push_back(JsonObject()
                            .Field("workload", w)
                            .Field("events", slab.events)
                            .Field("legacy_events_per_sec", legacy.events_per_sec)
                            .Field("slab4_events_per_sec", slab.events_per_sec)
                            .Field("speedup", speedup)
                            .Render());
  }
  const double geomean =
      std::exp(speedup_log_sum / static_cast<double>(workloads.size()));
  PrintTable(table, args.csv);
  std::printf("\ngeomean speedup over seed engine: %.2fx (target: >= 2x)\n", geomean);

  // -- PDES trajectory: the sharded engine at 1/2/4/8 shards (capped by
  // --shards). Runs serially — each measurement owns all its threads, so
  // speedups are not polluted by trial fan-out.
  std::printf("\n--- PDES: sharded engine, 64 nodes, conservative lookahead sync ---\n\n");
  std::vector<int> shard_counts;
  for (int s = 1; s <= args.shards; s *= 2) {
    shard_counts.push_back(s);
  }
  Table pdes_table(
      {"shards", "threads", "events", "wall (s)", "Mev/s", "speedup vs 1"});
  std::vector<std::string> pdes_rows;
  double base_events_per_sec = 0;
  for (int s : shard_counts) {
    const unsigned threads = ShardThreadsUsed(s);
    uint64_t events = 0;
    double best_seconds = 0;
    for (int trial = 0; trial < trials; ++trial) {
      const auto start = std::chrono::steady_clock::now();
      events = PdesWorkload(s, sizes.pdes,
                            base_seed + static_cast<uint64_t>(trial));
      const auto end = std::chrono::steady_clock::now();
      const double seconds = std::chrono::duration<double>(end - start).count();
      if (trial == 0 || seconds < best_seconds) {
        best_seconds = seconds;
      }
    }
    const double events_per_sec = static_cast<double>(events) / best_seconds;
    if (s == 1) {
      base_events_per_sec = events_per_sec;
    }
    const double speedup = events_per_sec / base_events_per_sec;
    pdes_table.AddRow({Table::Int(s), Table::Int(static_cast<int64_t>(threads)),
                       Table::Int(static_cast<int64_t>(events)),
                       Table::Num(best_seconds, 3),
                       Table::Num(events_per_sec / 1e6, 2),
                       Table::Num(speedup, 2)});
    pdes_rows.push_back(JsonObject()
                            .Field("shards", s)
                            .Field("threads_used", static_cast<int>(threads))
                            .Field("events", events)
                            .Field("seconds", best_seconds)
                            .Field("events_per_sec", events_per_sec)
                            .Field("speedup_vs_1shard", speedup)
                            .Render());
  }
  PrintTable(pdes_table, args.csv);

  if (!args.json.empty()) {
    const std::string json =
        JsonObject()
            .Field("bench", std::string("sim_throughput"))
            .Field("schema_version", 2)
            .Raw("config", JsonObject()
                               .Field("trials", trials)
                               .Field("seed", base_seed)
                               .Field("smoke", args.smoke)
                               .Field("max_shards", args.shards)
                               .Field("threads_used",
                                      static_cast<int>(std::thread::hardware_concurrency()))
                               .Render())
            .Raw("results", JsonArray(json_rows))
            .Raw("pdes", JsonArray(pdes_rows))
            .Field("geomean_speedup", geomean)
            .Render();
    if (!WriteJsonFile(args.json, json)) {
      return 1;
    }
    std::printf("wrote %s\n", args.json.c_str());
  }
  return geomean >= 1.0 ? 0 : 3;  // sanity floor; CI smoke just checks exit 0
}
