// RESIL — end-to-end reliability under cross-layer fault injection.
//
// Sweeps a canonical fault-plan intensity (Gilbert–Elliott wire loss +
// duplication + reordering + corruption, coherence fill delays, IOMMU fault
// bursts, DMA completion errors, OS crash windows, wedged NIC endpoints) per
// stack, with the client reliability layer enabled (exponential backoff +
// jitter + retry budget) and server-side at-most-once dedup on.
//
// Each request carries a unique sequence number; the service counts handler
// executions per sequence so duplicate executions are observable end to end.
// The paper's claim under test: a NIC that is part of the OS can degrade
// gracefully — goodput survives fault injection, and at-most-once semantics
// hold on every stack.
//
// --smoke is the CI gate: one nonzero intensity, all three stacks, asserting
// zero duplicate executions, a bounded retransmit rate, and nonzero goodput.
#include <cmath>
#include <unordered_map>

#include "bench/common.h"

namespace lauberhorn {
namespace {

struct Cell {
  uint64_t sent = 0;
  uint64_t ok = 0;         // responses with status kOk (goodput)
  uint64_t timeouts = 0;
  uint64_t retransmits = 0;
  uint64_t suppressed = 0;  // retry budget withheld the wire copy
  uint64_t late = 0;
  uint64_t dup_execs = 0;   // sequences executed more than once (must be 0)
  uint64_t replays = 0;     // server answered a duplicate from the cache
  uint64_t dup_drops = 0;   // server dropped a duplicate of an in-flight req
  uint64_t degradations = 0;  // Lauberhorn endpoint demotions
  uint64_t service_down_drops = 0;
  Duration p50 = 0;
  Duration p99 = 0;
};

// One service whose handler tallies executions per sequence number (arg 0),
// echoing both args back. Handlers never see request ids, so the sequence
// number travels as a marshalled argument.
ServiceDef MakeCountingService(std::unordered_map<uint64_t, uint32_t>& execs,
                               Duration service_time) {
  ServiceDef def;
  def.service_id = 1;
  def.name = "counted-echo";
  def.udp_port = 7000;
  MethodDef method;
  method.method_id = 0;
  method.name = "counted";
  method.request_sig.args = {WireType::kU64, WireType::kBytes};
  method.response_sig.args = {WireType::kU64, WireType::kBytes};
  method.handler = [&execs](const std::vector<WireValue>& args) {
    ++execs[args.at(0).scalar];
    return std::vector<WireValue>{args.at(0), args.at(1)};
  };
  method.SetFixedServiceTime(service_time);
  def.methods[0] = std::move(method);
  return def;
}

Cell Measure(StackKind stack, double intensity, uint64_t seed, bool smoke) {
  MachineConfig config;
  config.stack = stack;
  config.platform = PlatformSpec::EnzianEci();
  config.num_cores = 8;
  config.nic_queues = stack == StackKind::kBypass ? 4 : 2;
  config.linux_stack.worker_threads_per_service = 2;
  config.seed = seed;
  config.faults = FaultPlan::Canonical(intensity, seed);

  // Client reliability layer: exponential backoff with jitter, capped RTO,
  // and a token-bucket retry budget so loss bursts cannot become storms.
  config.client_retransmit_timeout = Microseconds(300);
  config.client_max_retransmits = 8;
  config.client_backoff_multiplier = 2.0;
  config.client_max_retransmit_timeout = Milliseconds(5);
  config.client_retransmit_jitter = 0.2;
  config.client_retry_budget_per_sec = 50000.0;
  config.server_dedup = true;

  // Lauberhorn: tighten the TRYAGAIN deadline and the degradation detector
  // so a wedged endpoint is demoted within tens of microseconds (detection
  // latency = tryagain_timeout * threshold).
  LauberhornParams params = config.platform.lauberhorn;
  params.tryagain_timeout = Microseconds(20);
  params.degrade_tryagain_threshold = 4;
  params.degrade_backoff = Microseconds(300);
  config.lauberhorn_params = params;

  std::unordered_map<uint64_t, uint32_t> execs;
  Machine machine(std::move(config));
  const ServiceDef& svc = machine.AddService(
      MakeCountingService(execs, Microseconds(1)),
      /*max_cores=*/stack == StackKind::kLauberhorn ? 4 : 1);
  machine.Start();
  if (stack == StackKind::kLauberhorn) {
    machine.StartHotLoop(svc);
  }
  machine.sim().RunUntil(Milliseconds(1));

  // Open-loop driver issuing uniquely-numbered requests. The run window
  // covers at least one OS crash window of the canonical plan (20 ms in).
  const double rate_rps = smoke ? 30000.0 : 60000.0;
  const Duration window = smoke ? Milliseconds(30) : Milliseconds(60);
  const SimTime stop = machine.sim().Now() + window;
  const Duration gap = NanosecondsF(1e9 / rate_rps);
  const std::vector<uint8_t> payload(64, 0xab);

  Cell cell;
  Histogram rtt;
  auto fire = std::make_shared<Function<void()>>();
  uint64_t seq = 0;
  *fire = [&machine, &svc, &cell, &rtt, &seq, fire, stop, gap, payload]() {
    if (machine.sim().Now() >= stop) {
      return;
    }
    std::vector<WireValue> args = {WireValue::U64(seq++),
                                   WireValue::Bytes(payload)};
    machine.client().Call(svc, 0, args,
                          [&cell, &rtt](const RpcMessage& response, Duration d) {
                            if (response.status == RpcStatus::kOk) {
                              ++cell.ok;
                              rtt.Record(d);
                            }
                          });
    machine.sim().Schedule(gap, [fire]() { (*fire)(); });
  };
  (*fire)();
  // Let stragglers and final retransmits drain before reading counters.
  machine.sim().RunUntil(stop + Milliseconds(10));

  cell.sent = seq;
  cell.timeouts = machine.client().timeouts();
  cell.retransmits = machine.client().retransmits();
  cell.suppressed = machine.client().retransmits_suppressed();
  cell.late = machine.client().late_responses();
  for (const auto& [s, count] : execs) {
    if (count > 1) {
      ++cell.dup_execs;
    }
  }
  cell.p50 = rtt.P50();
  cell.p99 = rtt.P99();
  switch (stack) {
    case StackKind::kLinux:
      cell.replays = machine.linux_stack()->dup_replays();
      cell.dup_drops = machine.linux_stack()->dup_drops_in_flight();
      cell.service_down_drops = machine.dma_nic()->rx_drops_service_down();
      break;
    case StackKind::kBypass:
      cell.replays = machine.bypass()->dup_replays();
      cell.dup_drops = machine.bypass()->dup_drops_in_flight();
      cell.service_down_drops = machine.dma_nic()->rx_drops_service_down();
      break;
    case StackKind::kLauberhorn: {
      const auto& stats = machine.lauberhorn_nic()->stats();
      cell.replays = stats.dup_replays;
      cell.dup_drops = stats.dup_drops_in_flight;
      cell.degradations = stats.degradations;
      cell.service_down_drops = stats.drops_service_down;
      break;
    }
  }
  return cell;
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  using namespace lauberhorn;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("RESIL",
              "goodput and at-most-once semantics under cross-layer fault injection");

  const std::vector<double> intensities =
      args.smoke ? std::vector<double>{1.0}
                 : std::vector<double>{0.0, 0.5, 1.0, 2.0};
  const std::vector<StackKind> stacks = {StackKind::kLinux, StackKind::kBypass,
                                         StackKind::kLauberhorn};

  struct Job {
    double intensity;
    StackKind stack;
  };
  std::vector<Job> jobs;
  for (double intensity : intensities) {
    for (StackKind stack : stacks) {
      jobs.push_back({intensity, stack});
    }
  }
  const std::vector<Cell> cells = RunTrialsParallel(
      static_cast<int>(jobs.size()), [&](int i) {
        const Job& job = jobs[static_cast<size_t>(i)];
        return Measure(job.stack, job.intensity, args.seed, args.smoke);
      });

  Table table({"intensity", "stack", "sent", "goodput", "p50 (us)", "p99 (us)",
               "retx", "suppr", "timeouts", "late", "replays", "dup-drops",
               "degrade", "svc-down", "dup-execs"});
  bool violation = false;
  std::vector<std::string> json_rows;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const Cell& cell = cells[i];
    table.AddRow({Table::Num(job.intensity, 2), ToString(job.stack),
                  Table::Int(static_cast<int64_t>(cell.sent)),
                  Table::Int(static_cast<int64_t>(cell.ok)), Us(cell.p50),
                  Us(cell.p99), Table::Int(static_cast<int64_t>(cell.retransmits)),
                  Table::Int(static_cast<int64_t>(cell.suppressed)),
                  Table::Int(static_cast<int64_t>(cell.timeouts)),
                  Table::Int(static_cast<int64_t>(cell.late)),
                  Table::Int(static_cast<int64_t>(cell.replays)),
                  Table::Int(static_cast<int64_t>(cell.dup_drops)),
                  Table::Int(static_cast<int64_t>(cell.degradations)),
                  Table::Int(static_cast<int64_t>(cell.service_down_drops)),
                  Table::Int(static_cast<int64_t>(cell.dup_execs))});
    JsonObject row;
    row.Field("intensity", job.intensity)
        .Field("stack", ToString(job.stack))
        .Field("sent", cell.sent)
        .Field("goodput", cell.ok)
        .Field("p50_us", ToMicroseconds(cell.p50))
        .Field("p99_us", ToMicroseconds(cell.p99))
        .Field("retransmits", cell.retransmits)
        .Field("retransmits_suppressed", cell.suppressed)
        .Field("timeouts", cell.timeouts)
        .Field("late_responses", cell.late)
        .Field("dedup_replays", cell.replays)
        .Field("dedup_drops_in_flight", cell.dup_drops)
        .Field("degradations", cell.degradations)
        .Field("service_down_drops", cell.service_down_drops)
        .Field("duplicate_executions", cell.dup_execs);
    json_rows.push_back(row.Render());

    // Acceptance gates. At-most-once must hold everywhere; under faults the
    // retransmit volume must stay bounded (the budget caps storms) and some
    // goodput must survive.
    if (cell.dup_execs != 0) {
      std::fprintf(stderr, "VIOLATION: %s at intensity %.2f executed %llu "
                   "sequences more than once\n",
                   ToString(job.stack).c_str(), job.intensity,
                   static_cast<unsigned long long>(cell.dup_execs));
      violation = true;
    }
    if (cell.ok == 0) {
      std::fprintf(stderr, "VIOLATION: %s at intensity %.2f completed nothing\n",
                   ToString(job.stack).c_str(), job.intensity);
      violation = true;
    }
    if (cell.sent > 0 &&
        static_cast<double>(cell.retransmits) > 2.0 * static_cast<double>(cell.sent)) {
      std::fprintf(stderr, "VIOLATION: %s at intensity %.2f retransmit rate "
                   "unbounded (%llu retx for %llu sent)\n",
                   ToString(job.stack).c_str(), job.intensity,
                   static_cast<unsigned long long>(cell.retransmits),
                   static_cast<unsigned long long>(cell.sent));
      violation = true;
    }
  }
  PrintTable(table, args.csv);

  if (!args.json.empty()) {
    JsonObject doc;
    doc.Field("bench", std::string("RESIL"))
        .Field("seed", args.seed)
        .Field("smoke", args.smoke)
        .Raw("rows", JsonArray(json_rows));
    if (!WriteJsonFile(args.json, doc.Render())) {
      return 1;
    }
  }

  std::printf("\nExpected shape: goodput decays gently with intensity on every stack\n"
              "(the reliability layer carries RPCs over loss, crashes, and wedges);\n"
              "duplicate executions stay zero, and Lauberhorn's degradations column\n"
              "shows wedged endpoints being demoted to the cold path.\n");
  return violation ? 1 : 0;
}
