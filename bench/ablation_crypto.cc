// ABL-CRYPTO — §6: "encryption can be handled with fairly standard
// techniques". This quantifies where: the DMA-NIC stacks pay software AES
// per byte on the host cores, while Lauberhorn's inline crypto engine
// opens/seals at near line rate inside the same pipeline that already
// touches every byte for unmarshalling.
#include "bench/common.h"

namespace lauberhorn {
namespace {

Duration Measure(StackKind stack, bool encrypted, size_t payload) {
  MachineConfig config;
  config.stack = stack;
  config.platform = PlatformSpec::EnzianEci();
  config.num_cores = 4;
  config.nic_queues = stack == StackKind::kBypass ? 4 : 2;
  config.encrypt_rpcs = encrypted;
  Machine machine(config);
  const ServiceDef& echo = machine.AddService(ServiceRegistry::MakeEchoService(1, 7000));
  machine.Start();
  if (stack == StackKind::kLauberhorn) {
    machine.StartHotLoop(echo);
  }
  machine.sim().RunUntil(Milliseconds(1));
  machine.ResetMeasurement();

  std::vector<uint8_t> body(payload, 0x2f);
  for (int i = 0; i < 40; ++i) {
    machine.sim().Schedule(Microseconds(200) * i, [&machine, &echo, &body]() {
      machine.client().Call(echo, 0, std::vector<WireValue>{WireValue::Bytes(body)});
    });
  }
  machine.sim().RunUntil(machine.sim().Now() + Milliseconds(100));
  return machine.end_system_latency().P50();
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  const bool csv = lauberhorn::BenchArgs::Parse(argc, argv).csv;
  using namespace lauberhorn;
  PrintHeader("ABL-CRYPTO", "transport encryption: NIC crypto engine vs software AES");

  Table table({"stack", "payload (B)", "clear p50 (us)", "encrypted p50 (us)",
               "crypto cost"});
  for (StackKind stack :
       {StackKind::kLinux, StackKind::kBypass, StackKind::kLauberhorn}) {
    for (size_t payload : {64u, 1024u, 4096u}) {
      const Duration clear = Measure(stack, false, payload);
      const Duration sealed = Measure(stack, true, payload);
      table.AddRow({ToString(stack), Table::Int(static_cast<int64_t>(payload)),
                    Us(clear), Us(sealed), Us(sealed - clear) + "us"});
    }
  }
  PrintTable(table, csv);

  std::printf("\nSoftware AES costs the host ~0.5us/KiB each way; the NIC engine hides\n"
              "crypto inside the pipeline, preserving the end-system latency advantage\n"
              "for encrypted RPCs (§6).\n");
  return 0;
}
