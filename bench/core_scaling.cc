// SCALE — §5.2: "this approach therefore also supports dynamic scaling of the
// cores used for RPC based on load" and reallocation of cores between RPC
// services and other work.
//
// A load step (20 krps -> 400 krps -> 20 krps) hits one service with several
// registered endpoints. The NIC's load statistics plus the runtime policy
// recruit cores on the way up (cold dispatches turn loops hot) and the
// RETIRE path releases them on the way down. We sample active loops and
// completion rate over time.
#include "bench/common.h"

namespace lauberhorn {
namespace {

struct Sample {
  double t_ms = 0;
  uint64_t completed_delta = 0;
  int loops_active = 0;
  Duration p99 = 0;
};

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  const bool csv = lauberhorn::BenchArgs::Parse(argc, argv).csv;
  using namespace lauberhorn;
  PrintHeader("SCALE", "NIC-driven core scaling across a load step (lauberhorn)");

  MachineConfig config;
  config.stack = StackKind::kLauberhorn;
  config.platform = PlatformSpec::EnzianEci();
  config.num_cores = 8;
  Machine machine(config);
  const ServiceDef& echo = machine.AddService(
      ServiceRegistry::MakeEchoService(1, 7000, Microseconds(6)), /*max_cores=*/6);
  machine.Start();
  machine.sim().RunUntil(Milliseconds(1));

  std::vector<WorkloadTarget> targets = {{&echo, 0, 64, 1.0}};
  OpenLoopGenerator::Config generator_config;
  generator_config.rate_rps = 20000.0;
  OpenLoopGenerator generator(machine.sim(), machine.client(), targets,
                              generator_config);
  generator.Start();

  // Load step profile: low until 20ms, high 20-60ms, low afterwards.
  // OpenLoopGenerator reads rate at schedule time; emulate the step by
  // layering a second generator for the burst window.
  OpenLoopGenerator::Config burst_config;
  burst_config.rate_rps = 380000.0;
  burst_config.seed = 99;
  burst_config.start = Milliseconds(20);
  burst_config.stop = Milliseconds(60);
  OpenLoopGenerator burst(machine.sim(), machine.client(), targets, burst_config);
  burst.Start();

  Table table({"t (ms)", "krps completed", "active loops", "RTT p99 (us)"});
  uint64_t last_completed = 0;
  Histogram window_rtt;
  const Duration step = Milliseconds(4);
  for (int i = 1; i <= 20; ++i) {
    machine.sim().RunUntil(Milliseconds(4) * i);
    const uint64_t total = generator.completed() + burst.completed();
    const uint64_t delta = total - last_completed;
    last_completed = total;
    // Active loops: endpoints with a live user-mode loop right now.
    int loops = 0;
    for (uint32_t ep : machine.EndpointsOf(echo)) {
      if (machine.lauberhorn_nic()->EndpointActive(ep)) {
        ++loops;
      }
    }
    // Approximate window p99 from the cumulative histogram (adequate for the
    // shape: the transient spike at the step is visible in deltas).
    table.AddRow({Table::Num(ToMilliseconds(step) * i, 0),
                  Table::Num(static_cast<double>(delta) / ToSeconds(step) / 1000.0, 1),
                  Table::Int(loops), Us(generator.rtt().P99())});
  }
  PrintTable(table, csv);

  std::printf("\ncold dispatches: %llu, retires: %llu, dispatcher wakeups: %llu\n",
              static_cast<unsigned long long>(machine.lauberhorn_nic()->stats().cold_dispatches),
              static_cast<unsigned long long>(machine.lauberhorn_nic()->stats().retires),
              static_cast<unsigned long long>(machine.lauberhorn_nic()->stats().dispatcher_wakeups));
  std::printf("\nExpected shape: active loops rise with the burst (cold dispatches turning\n"
              "hot) and fall back after it (RETIRE), with throughput tracking offered load.\n");
  return 0;
}
