// ABL-RESP — ablation of a design choice DESIGN.md calls out: Fig. 4 collects
// the RPC response with a coherence fetch-exclusive after the CPU's cached
// store (the paper's protocol), vs. the CPU pushing the response with posted
// uncached writes (the PIO alternative of Ruzhanskaia et al.).
//
// The fetch-based path costs an RFO round trip before the store completes
// plus a probe round trip at collection; the posted path pays only the CPU's
// write-combining cost but gives up the clean ownership handoff (the paper's
// choice keeps the response cacheable while the handler builds it in place).
#include "bench/common.h"

namespace lauberhorn {
namespace {

Duration Measure(bool posted, size_t payload) {
  MachineConfig config;
  config.stack = StackKind::kLauberhorn;
  config.platform = PlatformSpec::EnzianEci();
  config.num_cores = 4;
  LauberhornParams params = config.platform.lauberhorn;
  params.posted_responses = posted;
  config.lauberhorn_params = params;
  Machine machine(config);
  const ServiceDef& echo = machine.AddService(ServiceRegistry::MakeEchoService(1, 7000));
  machine.Start();
  machine.StartHotLoop(echo);
  machine.sim().RunUntil(Milliseconds(1));
  machine.ResetMeasurement();

  std::vector<uint8_t> body(payload, 0x3d);
  for (int i = 0; i < 50; ++i) {
    machine.sim().Schedule(Microseconds(100) * i, [&machine, &echo, &body]() {
      machine.client().Call(echo, 0, std::vector<WireValue>{WireValue::Bytes(body)});
    });
  }
  machine.sim().RunUntil(machine.sim().Now() + Milliseconds(50));
  return machine.end_system_latency().P50();
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  const bool csv = lauberhorn::BenchArgs::Parse(argc, argv).csv;
  using namespace lauberhorn;
  PrintHeader("ABL-RESP",
              "response path ablation: fetch-exclusive (Fig. 4) vs posted writes");

  Table table({"payload (B)", "fetch-exclusive p50 (us)", "posted-write p50 (us)",
               "posted saves"});
  for (size_t payload : {16u, 64u, 256u, 1024u, 2048u}) {
    const Duration fetch = Measure(false, payload);
    const Duration posted = Measure(true, payload);
    table.AddRow({Table::Int(static_cast<int64_t>(payload)), Us(fetch), Us(posted),
                  Us(fetch - posted) + "us"});
  }
  PrintTable(table, csv);

  std::printf("\nThe posted path trims the store-RFO round trip from the critical path.\n"
              "The paper keeps the fetch-exclusive design for its clean ownership\n"
              "handoff; this quantifies what that choice costs on this platform.\n");
  return 0;
}
