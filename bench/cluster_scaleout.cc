// CLSTR: cluster dispatch plane scale-out (DESIGN.md §13, EXPERIMENTS.md).
//
// Three cells over the multi-machine testbed + src/cluster dispatch plane:
//
//   1. Scaling: N in {1,2,4,8} machines, every service replicated on every
//      machine, one ClusterClient edge per machine driving open-loop Poisson
//      arrivals with Zipf skew over services. Reports aggregate goodput and
//      the speedup vs N=1 (weak scaling: offered load grows with N).
//   2. Failover: N=4, one replicated service under steady load; one replica
//      machine's OS crashes mid-run (PR-2 fault plan). The directory marks
//      the replica down after consecutive timeouts, edges re-route within
//      the client retry budget, and per-request execution counts prove
//      at-most-once cluster-wide (zero duplicate executions).
//   3. Fabric: per-port egress-queue drop counters surface through
//      Testbed::ExportMetrics.
//   4. PDES scale: N in {8,16,32,64} machines under --shards S parallel
//      simulation; reports wall-clock goodput per simulated machine and the
//      64-vs-8 ratio (the sharded-engine scalability claim). Informational
//      on oversubscribed hardware — threads timeslice.
//
// --smoke gates (exit 1 + VIOLATION on stderr on failure):
//   - aggregate goodput at 8 machines >= 6x the 1-machine cell
//   - failover: every call completes (nothing exhausts the retry budget),
//     zero duplicate executions, worst-case rtt within the retry budget
//   - fabric/port queue-drop counters present in the exported metrics
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "bench/common.h"
#include "src/cluster/cluster_client.h"
#include "src/core/testbed.h"
#include "src/sim/shard.h"

namespace lauberhorn {
namespace {

struct CellParams {
  int machines = 1;
  int services = 4;
  const char* policy = "least-loaded";
  double per_edge_rps = 40000.0;
  double zipf_skew = 1.2;      // service popularity
  Duration measure = Milliseconds(20);
  Duration warmup = Milliseconds(2);
  Duration drain = Milliseconds(5);
  uint64_t seed = 1;
  // Parallel simulation shards (1 = sequential testbed, the seed behavior).
  int shards = 1;
  // Failover cell: machine 1 crashes at `crash_at` for `outage` (0 = none).
  Duration crash_at = 0;
  Duration outage = 0;
};

struct CellResult {
  int machines = 0;
  int shards = 1;
  std::string policy;
  double offered_rps = 0;
  double goodput_rps = 0;
  double wall_seconds = 0;  // wall-clock of the RunUntil, threads included
  Duration p50 = 0, p99 = 0, max_rtt = 0;
  uint64_t calls = 0, ok = 0, failovers = 0, diverts = 0, exhausted = 0;
  uint64_t marked_down = 0, marked_up = 0;
  uint64_t duplicate_executions = 0;
  uint64_t fabric_forwarded = 0, fabric_queue_drops = 0;
  uint64_t horizon_stalls = 0, cross_shard_messages = 0;
  bool fabric_metrics_present = false;
  bool sim_metrics_present = false;

  // Wall-clock goodput each simulated machine achieves — the PDES scale
  // metric (per-machine cost of growing the cluster).
  double PerMachineWallRps() const {
    return wall_seconds > 0
               ? static_cast<double>(ok) / wall_seconds / machines
               : 0;
  }
};

std::unique_ptr<LbPolicy> MakePolicy(const std::string& name) {
  if (name == "round-robin") return std::make_unique<RoundRobinPolicy>();
  if (name == "consistent-hash") return std::make_unique<ConsistentHashPolicy>();
  return std::make_unique<LeastLoadedPolicy>();
}

// Echo-with-sequence service: request/response carry one u64 (the caller's
// app-level sequence number); every execution bumps `executions[seq]` so the
// failover cell can prove at-most-once cluster-wide.
ServiceDef MakeSeqService(uint32_t id, uint16_t port,
                          std::unordered_map<uint64_t, uint32_t>* executions) {
  ServiceDef def;
  def.service_id = id;
  def.name = "seq" + std::to_string(id);
  def.udp_port = port;
  MethodDef echo;
  echo.method_id = 0;
  echo.request_sig.args = {WireType::kU64};
  echo.response_sig.args = {WireType::kU64};
  echo.handler = [executions](const std::vector<WireValue>& args) {
    if (executions != nullptr) {
      ++(*executions)[args[0].scalar];
    }
    return std::vector<WireValue>{WireValue::U64(args[0].scalar)};
  };
  echo.SetFixedServiceTime(Microseconds(1));
  def.methods[0] = std::move(echo);
  return def;
}

CellResult RunCell(const CellParams& p) {
  TestbedConfig tb;
  tb.shards = p.shards;
  Testbed testbed(tb);
  MachineConfig base;
  base.stack = StackKind::kLauberhorn;
  base.num_cores = 8;
  // Client reliability + server dedup: retransmits carry requests over loss,
  // dedup keeps execution at-most-once, timeouts feed the failover path.
  base.client_retransmit_timeout = Microseconds(100);
  base.client_max_retransmits = 2;
  base.server_dedup = true;
  base.admission.enabled = true;
  base.admission.queue_depth_limit = 64;

  // One executions map per machine: handlers run on the hosting machine's
  // shard, so each map is only touched by one thread; merged after the run
  // for the cluster-wide at-most-once check.
  std::vector<std::unordered_map<uint64_t, uint32_t>> executions(
      static_cast<size_t>(p.machines));
  std::vector<Machine*> machines;
  for (int m = 0; m < p.machines; ++m) {
    MachineConfig config = base;
    config.seed = p.seed + static_cast<uint64_t>(m) * 977;
    if (p.outage > 0 && m == 1) {
      config.faults.os.first_crash_at = p.crash_at;
      config.faults.os.restart_delay = p.outage;
    }
    machines.push_back(&testbed.AddMachine(config));
  }

  // Full replication: every machine hosts every service; the directory gets
  // one replica per (service, machine) with a live NIC queue-depth probe.
  ServiceDirectory directory;
  std::vector<const ServiceDef*> defs(machines.size() * p.services);
  for (size_t m = 0; m < machines.size(); ++m) {
    for (int s = 0; s < p.services; ++s) {
      const uint32_t service_id = static_cast<uint32_t>(s + 1);
      const uint16_t port = static_cast<uint16_t>(7000 + s);
      defs[m * p.services + s] = &machines[m]->AddService(
          MakeSeqService(service_id, port, &executions[m]));
    }
  }
  // Sharded runs publish NIC queue depths through per-machine DepthPublisher
  // registers (the raw probe reads another shard's queues); sequential runs
  // keep the raw probe, matching the seed behavior exactly.
  std::vector<std::unique_ptr<DepthPublisher>> publishers;
  for (size_t m = 0; m < machines.size(); ++m) {
    machines[m]->Start();
    for (int s = 0; s < p.services; ++s) {
      const ServiceDef& def = *defs[m * p.services + s];
      machines[m]->StartHotLoop(def);
      ReplicaInfo info;
      info.machine = static_cast<uint32_t>(m);
      info.ip = machines[m]->config().server_ip;
      info.udp_port = def.udp_port;
      info.stack = StackKind::kLauberhorn;
      info.placement = PlacementKind::kHotUserPoll;
      auto probe = MakeLauberhornDepthProbe(*machines[m], def);
      if (p.shards > 1) {
        publishers.push_back(std::make_unique<DepthPublisher>(
            machines[m]->sim(), std::move(probe)));
        publishers.back()->Start();
        info.queue_depth = publishers.back()->Reader();
      } else {
        info.queue_depth = std::move(probe);
      }
      directory.AddReplica(def.service_id, std::move(info));
    }
  }

  // One dispatch edge per machine: its own policy instance (policies carry
  // cursor/ring state) wrapped around the machine-local RpcClient.
  struct Edge {
    std::unique_ptr<LbPolicy> policy;
    std::unique_ptr<ClusterClient> cluster;
  };
  ClusterClient::Config ccfg;
  ccfg.max_failovers = 2;
  ccfg.down_after_timeouts = 2;
  ccfg.down_duration = Milliseconds(1);
  std::vector<Edge> edges(machines.size());
  for (size_t m = 0; m < machines.size(); ++m) {
    edges[m].policy = MakePolicy(p.policy);
    // Each edge lives on its machine's own shard: timers and completions run
    // where the machine's RpcClient runs.
    edges[m].cluster = std::make_unique<ClusterClient>(
        machines[m]->sim(), machines[m]->client(), directory, *edges[m].policy,
        ccfg);
  }

  // Open-loop Poisson arrivals per edge; Zipf over services, Zipf over a
  // large user population for the shard key (consistent hashing's input).
  const SimTime t_start = testbed.sim().Now() + Milliseconds(1);
  const SimTime t_measure = t_start + p.warmup;
  const SimTime t_stop = t_measure + p.measure;

  CellResult result;
  result.machines = p.machines;
  result.shards = p.shards;
  result.policy = p.policy;
  // Zipf tables are read-only after construction — safe to share across
  // shard threads.
  ZipfDistribution service_zipf(static_cast<size_t>(p.services), p.zipf_skew);
  ZipfDistribution user_zipf(10000, 0.99);
  // All driver state is per-edge: each driver runs on its machine's shard,
  // so counters, the rtt histogram, and the rng are single-threaded. App
  // sequence numbers get a per-edge range (m << 40) so they stay
  // cluster-unique without a shared counter.
  struct EdgeDriver {
    Rng rng{0};
    Simulator* sim = nullptr;
    uint64_t next_seq = 0;
    uint64_t calls = 0, ok = 0;
    Histogram rtt;
    Callback tick;
  };
  std::vector<std::unique_ptr<EdgeDriver>> drivers;
  for (size_t m = 0; m < machines.size(); ++m) {
    auto driver = std::make_unique<EdgeDriver>();
    EdgeDriver* d = driver.get();
    d->rng = Rng(p.seed * 2654435761u + m);
    d->sim = &machines[m]->sim();
    d->next_seq = static_cast<uint64_t>(m) << 40;
    ClusterClient* cluster = edges[m].cluster.get();
    const double per_edge_rps = p.per_edge_rps;
    d->tick = [d, cluster, per_edge_rps, &service_zipf, &user_zipf, t_measure,
               t_stop]() {
      Simulator& sim = *d->sim;
      if (sim.Now() >= t_stop) {
        return;
      }
      const uint32_t service_id =
          static_cast<uint32_t>(service_zipf.Sample(d->rng) + 1);
      const uint64_t user = user_zipf.Sample(d->rng);
      const uint64_t this_seq = d->next_seq++;
      const SimTime sent_at = sim.Now();
      const bool measured = sent_at >= t_measure;
      std::vector<uint8_t> payload;
      MarshalArgs(MethodSignature{{WireType::kU64}},
                  std::vector<WireValue>{WireValue::U64(this_seq)}, payload);
      ++d->calls;
      cluster->Call(service_id, 0, std::move(payload), user,
                    [d, measured](const RpcMessage& r, Duration call_rtt) {
                      if (r.status == RpcStatus::kOk && measured) {
                        ++d->ok;
                        d->rtt.Record(call_rtt);
                      }
                    });
      const Duration gap = NanosecondsF(d->rng.Exponential(1e9 / per_edge_rps));
      sim.Schedule(gap, [d] { d->tick(); });
    };
    d->sim->ScheduleAt(t_start + static_cast<Duration>(m) * 100,
                       [d] { d->tick(); });
    drivers.push_back(std::move(driver));
  }

  const auto wall_start = std::chrono::steady_clock::now();
  testbed.RunUntil(t_stop + p.drain);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  Histogram rtt;
  for (const auto& d : drivers) {
    result.calls += d->calls;
    result.ok += d->ok;
    rtt.Merge(d->rtt);
  }
  result.offered_rps = p.per_edge_rps * p.machines;
  result.goodput_rps =
      static_cast<double>(result.ok) / ToSeconds(p.measure + p.drain / 2);
  result.p50 = rtt.P50();
  result.p99 = rtt.P99();
  result.max_rtt = rtt.max();
  ClusterClient::Stats totals;
  for (Edge& e : edges) {
    totals.failovers += e.cluster->stats().failovers;
    totals.diverts += e.cluster->stats().diverts;
    totals.exhausted += e.cluster->stats().exhausted;
    totals.ok += e.cluster->stats().ok;
  }
  result.failovers = totals.failovers;
  result.diverts = totals.diverts;
  result.exhausted = totals.exhausted;
  result.marked_down = directory.stats().marked_down;
  result.marked_up = directory.stats().marked_up;
  // A retried request can execute on several machines; at-most-once means
  // the cluster-wide count per sequence number stays <= 1, so merge the
  // per-machine maps before checking.
  std::unordered_map<uint64_t, uint32_t> merged_executions;
  for (const auto& per_machine : executions) {
    for (const auto& [s, count] : per_machine) {
      merged_executions[s] += count;
    }
  }
  for (const auto& [s, count] : merged_executions) {
    if (count > 1) {
      ++result.duplicate_executions;
    }
  }

  for (int s = 0; s < testbed.shards(); ++s) {
    const ShardedEngine::ShardStats& stats = testbed.engine().stats(s);
    result.horizon_stalls += stats.horizon_stalls;
    result.cross_shard_messages += stats.messages_posted;
  }

  MetricsRegistry metrics;
  testbed.ExportMetrics(metrics);
  result.fabric_forwarded = metrics.Counter("fabric/forwarded");
  result.fabric_queue_drops = metrics.Counter("fabric/queue_drops");
  result.fabric_metrics_present =
      metrics.HasCounter("fabric/queue_drops") &&
      metrics.HasCounter("fabric/port0/queue_drops") &&
      metrics.HasCounter("m0/wire/nic_egress_queue_drops");
  result.sim_metrics_present = metrics.HasCounter("sim/0/pending") &&
                               metrics.HasCounter("sim/0/events_executed") &&
                               metrics.HasCounter("sim/0/horizon_stalls");
  return result;
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  using namespace lauberhorn;
  BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("CLSTR", "cluster dispatch plane: scale-out, load balancing, failover");

  const bool smoke = args.smoke;
  CellParams base;
  base.seed = args.seed;
  base.measure = smoke ? Milliseconds(20) : Milliseconds(60);
  base.per_edge_rps = smoke ? 40000.0 : 60000.0;

  // --- Cell 1: throughput scaling ------------------------------------------
  std::vector<int> sizes = smoke ? std::vector<int>{1, 8}
                                 : std::vector<int>{1, 2, 4, 8};
  std::vector<std::string> policies =
      smoke ? std::vector<std::string>{"least-loaded"}
            : std::vector<std::string>{"round-robin", "consistent-hash",
                                       "least-loaded"};
  Table scaling({"machines", "policy", "offered_krps", "goodput_krps",
                 "speedup", "p50_us", "p99_us", "diverts", "fabric_drops"});
  std::unordered_map<std::string, double> base_goodput;
  std::vector<std::string> scaling_json;
  double speedup_8x = 0;
  for (const std::string& policy : policies) {
    for (int n : sizes) {
      CellParams p = base;
      p.machines = n;
      p.policy = policy.c_str();
      CellResult r = RunCell(p);
      if (n == 1) {
        base_goodput[policy] = r.goodput_rps;
      }
      const double speedup = base_goodput[policy] > 0
                                 ? r.goodput_rps / base_goodput[policy]
                                 : 0;
      if (n == 8 && policy == policies.back()) {
        speedup_8x = speedup;
      }
      scaling.AddRow({Table::Int(n), policy, Table::Num(r.offered_rps / 1e3),
                      Table::Num(r.goodput_rps / 1e3), Table::Num(speedup),
                      Us(r.p50), Us(r.p99), Table::Int(static_cast<int64_t>(r.diverts)),
                      Table::Int(static_cast<int64_t>(r.fabric_queue_drops))});
      scaling_json.push_back(JsonObject()
                                 .Field("machines", n)
                                 .Field("policy", policy)
                                 .Field("offered_rps", r.offered_rps)
                                 .Field("goodput_rps", r.goodput_rps)
                                 .Field("speedup", speedup)
                                 .Field("p99_us", ToMicroseconds(r.p99))
                                 .Render());
    }
  }
  PrintTable(scaling, args.csv);

  // --- Cell 1b: PDES scale-out to 64 machines ------------------------------
  // The parallel-simulation payoff cell: grow the cluster to 64 machines and
  // report the *wall-clock* goodput per simulated machine, i.e. what it
  // costs the simulator (not the simulated cluster) to host each machine.
  // The ISSUE target: 64 machines within 2x of the 8-machine per-machine
  // wall throughput. Runs at --shards; informational on a single core
  // (threads timeslice), so the ratio is reported but not gated.
  const unsigned threads_used = ShardThreadsUsed(args.shards);
  std::vector<int> scale_sizes = smoke ? std::vector<int>{8, 64}
                                       : std::vector<int>{8, 16, 32, 64};
  Table scale({"machines", "shards", "threads", "goodput_krps", "wall_s",
               "machine_wall_rps", "vs_8m", "stalls", "xshard_msgs"});
  std::vector<std::string> scale_json;
  double base_wall_rps = 0;
  double wall_ratio_64m = 0;
  bool sim_metrics_present = true;
  for (int n : scale_sizes) {
    CellParams p = base;
    p.machines = n;
    p.policy = "least-loaded";
    p.shards = args.shards;
    p.per_edge_rps = smoke ? 20000.0 : 40000.0;
    p.measure = smoke ? Milliseconds(10) : Milliseconds(30);
    CellResult r = RunCell(p);
    if (n == scale_sizes.front()) {
      base_wall_rps = r.PerMachineWallRps();
    }
    const double vs_8m =
        base_wall_rps > 0 ? r.PerMachineWallRps() / base_wall_rps : 0;
    if (n == 64) {
      wall_ratio_64m = vs_8m;
    }
    sim_metrics_present = sim_metrics_present && r.sim_metrics_present;
    scale.AddRow({Table::Int(n), Table::Int(r.shards),
                  Table::Int(static_cast<int64_t>(threads_used)),
                  Table::Num(r.goodput_rps / 1e3), Table::Num(r.wall_seconds),
                  Table::Num(r.PerMachineWallRps()), Table::Num(vs_8m),
                  Table::Int(static_cast<int64_t>(r.horizon_stalls)),
                  Table::Int(static_cast<int64_t>(r.cross_shard_messages))});
    scale_json.push_back(JsonObject()
                             .Field("machines", n)
                             .Field("shards", r.shards)
                             .Field("threads_used", static_cast<int>(threads_used))
                             .Field("goodput_rps", r.goodput_rps)
                             .Field("wall_seconds", r.wall_seconds)
                             .Field("per_machine_wall_rps", r.PerMachineWallRps())
                             .Field("vs_8m", vs_8m)
                             .Field("horizon_stalls", r.horizon_stalls)
                             .Field("cross_shard_messages", r.cross_shard_messages)
                             .Render());
  }
  PrintTable(scale, args.csv);
  std::printf("\n64-machine per-machine wall throughput: %.2fx of 8-machine"
              " (target: >= 0.5)\n",
              wall_ratio_64m);

  // --- Cell 2: kill-one-replica failover -----------------------------------
  CellParams f = base;
  f.machines = 4;
  f.services = 1;
  f.per_edge_rps = smoke ? 20000.0 : 40000.0;
  f.measure = smoke ? Milliseconds(12) : Milliseconds(40);
  f.crash_at = Milliseconds(5);
  f.outage = smoke ? Milliseconds(6) : Milliseconds(20);
  f.drain = Milliseconds(8);
  CellResult fr = RunCell(f);
  // Worst-case tolerable rtt: every attempt can burn the full retransmit
  // schedule (100us, then 200us backoff) before failing over.
  const Duration retry_budget = 3 * (Microseconds(100) + Microseconds(200)) +
                                Microseconds(500);
  Table failover({"metric", "value"});
  failover.AddRow({"calls", Table::Int(static_cast<int64_t>(fr.calls))});
  failover.AddRow({"ok", Table::Int(static_cast<int64_t>(fr.ok))});
  failover.AddRow({"failovers", Table::Int(static_cast<int64_t>(fr.failovers))});
  failover.AddRow({"exhausted", Table::Int(static_cast<int64_t>(fr.exhausted))});
  failover.AddRow({"replicas_marked_down", Table::Int(static_cast<int64_t>(fr.marked_down))});
  failover.AddRow({"replicas_marked_up", Table::Int(static_cast<int64_t>(fr.marked_up))});
  failover.AddRow({"duplicate_executions", Table::Int(static_cast<int64_t>(fr.duplicate_executions))});
  failover.AddRow({"max_rtt_us", Us(fr.max_rtt)});
  failover.AddRow({"retry_budget_us", Us(retry_budget)});
  PrintTable(failover, args.csv);

  std::printf("\nfabric: forwarded=%" PRIu64 " queue_drops=%" PRIu64
              " metrics_present=%s\n",
              fr.fabric_forwarded, fr.fabric_queue_drops,
              fr.fabric_metrics_present ? "yes" : "no");

  // --- Gates ----------------------------------------------------------------
  int violations = 0;
  auto violation = [&](const char* fmt, auto... vals) {
    std::fprintf(stderr, "VIOLATION: ");
    std::fprintf(stderr, fmt, vals...);
    std::fprintf(stderr, "\n");
    ++violations;
  };
  if (speedup_8x < 6.0) {
    violation("8-machine speedup %.2f < 6.0", speedup_8x);
  }
  if (fr.failovers == 0) {
    violation("failover cell never failed over (crash window ineffective)");
  }
  if (fr.exhausted != 0) {
    violation("%" PRIu64 " calls exhausted the retry budget", fr.exhausted);
  }
  if (fr.duplicate_executions != 0) {
    violation("%" PRIu64 " duplicate executions (at-most-once broken)",
              fr.duplicate_executions);
  }
  if (fr.max_rtt > retry_budget) {
    violation("max failover rtt %.1fus exceeds retry budget %.1fus",
              ToMicroseconds(fr.max_rtt), ToMicroseconds(retry_budget));
  }
  if (!fr.fabric_metrics_present) {
    violation("fabric/port queue-drop counters missing from ExportMetrics");
  }
  if (!sim_metrics_present) {
    violation("sim/<shard> counters missing from ExportMetrics");
  }

  if (!args.json.empty()) {
    JsonObject out;
    out.Field("bench", std::string("cluster_scaleout"))
        .Field("smoke", smoke)
        .Field("shards", args.shards)
        .Raw("scaling", JsonArray(scaling_json))
        .Raw("pdes_scale", JsonArray(scale_json))
        .Field("wall_ratio_64m_vs_8m", wall_ratio_64m)
        .Field("speedup_8x", speedup_8x)
        .Field("failover_calls", fr.calls)
        .Field("failover_ok", fr.ok)
        .Field("failovers", fr.failovers)
        .Field("exhausted", fr.exhausted)
        .Field("duplicate_executions", fr.duplicate_executions)
        .Field("max_failover_rtt_us", ToMicroseconds(fr.max_rtt))
        .Field("fabric_queue_drops", fr.fabric_queue_drops)
        .Field("violations", violations);
    if (!WriteJsonFile(args.json, out.Render())) {
      return 1;
    }
  }

  if (violations > 0) {
    std::fprintf(stderr, "%d violation(s)\n", violations);
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
