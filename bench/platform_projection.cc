// PROJ — §4: "we anticipate comparable gains with CXL 3.0." Runs the full
// Lauberhorn hot path end to end on each platform cost model: the Enzian
// prototype, a modern PCIe server given a coherent device port, and the
// CXL.mem-3.0 projection — against each platform's own Linux baseline.
#include "bench/common.h"

namespace lauberhorn {
namespace {

struct Row {
  Duration lauberhorn = 0;
  Duration linux_stack = 0;
  double cycles = 0;
};

Row Measure(const PlatformSpec& platform) {
  Row row;
  for (StackKind stack : {StackKind::kLauberhorn, StackKind::kLinux}) {
    EchoSetup setup = EchoSetup::Make(stack, platform, /*cores=*/4);
    Machine& machine = *setup.machine;
    machine.ResetMeasurement();
    std::vector<uint8_t> body(64, 9);
    for (int i = 0; i < 50; ++i) {
      machine.sim().Schedule(Microseconds(100) * i, [&machine, &setup, &body]() {
        machine.client().Call(*setup.echo, 0,
                              std::vector<WireValue>{WireValue::Bytes(body)});
      });
    }
    machine.sim().RunUntil(machine.sim().Now() + Milliseconds(50));
    if (stack == StackKind::kLauberhorn) {
      row.lauberhorn = machine.end_system_latency().P50();
      row.cycles = machine.CyclesPerRpc();
    } else {
      row.linux_stack = machine.end_system_latency().P50();
    }
  }
  return row;
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  const bool csv = lauberhorn::BenchArgs::Parse(argc, argv).csv;
  using namespace lauberhorn;
  PrintHeader("PROJ", "Lauberhorn across interconnect generations (64B echo, hot)");

  Table table({"platform", "lauberhorn end-sys p50 (us)", "linux end-sys p50 (us)",
               "speedup", "lauberhorn cycles/RPC"});
  for (const PlatformSpec& platform :
       {PlatformSpec::EnzianEci(), PlatformSpec::ModernPcPcie(),
        PlatformSpec::Cxl3Projection()}) {
    const Row row = Measure(platform);
    table.AddRow({platform.name, Us(row.lauberhorn), Us(row.linux_stack),
                  Table::Num(static_cast<double>(row.linux_stack) /
                                 static_cast<double>(row.lauberhorn), 1) + "x",
                  Table::Int(static_cast<int64_t>(row.cycles))});
  }
  PrintTable(table, csv);

  std::printf("\nPaper claim (§4): the gains are not Enzian-specific — faster coherent\n"
              "interconnects (CXL.mem 3.0 class) widen the advantage, because the\n"
              "dispatch cost is dominated by device hops the new fabrics shrink.\n");
  return 0;
}
