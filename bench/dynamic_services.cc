// DYN — §4: "this efficiency is preserved when executing dynamic workloads
// where statically associating DMA queues, cores, threads, and sockets is not
// practical" — i.e. many more endpoints than cores.
//
// Sweep the number of services (Zipf-popular, skew 1.0) on an 8-core machine
// at a fixed total offered load and compare throughput and tail latency of
// the three stacks. Bypass binds flows to queues/cores statically; Lauberhorn
// shares cores via NIC-driven scheduling; Linux pays the kernel on every
// request.
#include "bench/common.h"

namespace lauberhorn {
namespace {

struct Cell {
  uint64_t completed = 0;
  Duration p50 = 0;
  Duration p99 = 0;
};

Cell Measure(StackKind stack, int num_services, double rate_rps) {
  MachineConfig config;
  config.stack = stack;
  config.platform = PlatformSpec::EnzianEci();
  config.num_cores = 8;
  config.nic_queues = stack == StackKind::kBypass ? 8 : 4;
  // Popular services may occupy several cores (several endpoints); the tail
  // shares what is left via the cold path.
  const int max_cores_per_service = num_services <= 16 ? 4 : 2;
  config.lauberhorn_endpoints =
      static_cast<size_t>(num_services * max_cores_per_service) + 8;
  config.linux_stack.worker_threads_per_service = 4;
  Machine machine(config);

  std::vector<WorkloadTarget> targets;
  std::vector<const ServiceDef*> services;
  for (int i = 0; i < num_services; ++i) {
    const ServiceDef& service = machine.AddService(
        ServiceRegistry::MakeEchoService(static_cast<uint32_t>(i + 1),
                                         static_cast<uint16_t>(7000 + i),
                                         Microseconds(20)),
        stack == StackKind::kLauberhorn ? max_cores_per_service : 1);
    services.push_back(&service);
    targets.push_back({&service, 0, 64, 1.0});
  }
  machine.Start();
  if (stack == StackKind::kLauberhorn) {
    // Hot-start as many of the most popular services as cores allow; the rest
    // arrive cold and are scheduled on demand (the point of the experiment).
    const int hot = std::min(num_services, 6);
    for (int i = 0; i < hot; ++i) {
      machine.StartHotLoop(*services[static_cast<size_t>(i)]);
    }
  }
  machine.sim().RunUntil(Milliseconds(1));
  machine.ResetMeasurement();

  OpenLoopGenerator::Config generator_config;
  generator_config.rate_rps = rate_rps;
  generator_config.zipf_skew = 1.0;
  generator_config.stop = machine.sim().Now() + Milliseconds(200);
  OpenLoopGenerator generator(machine.sim(), machine.client(), targets,
                              generator_config);
  generator.Start();
  machine.sim().RunUntil(machine.sim().Now() + Milliseconds(220));

  Cell cell;
  cell.completed = generator.completed();
  cell.p50 = generator.rtt().P50();
  cell.p99 = generator.rtt().P99();
  return cell;
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  const bool csv = lauberhorn::BenchArgs::Parse(argc, argv).csv;
  using namespace lauberhorn;
  constexpr double kRate = 100000.0;
  PrintHeader("DYN", "services >> cores: 8 cores, Zipf(1.0), 100 krps, 20us handlers");

  Table table({"services", "stack", "completed (of ~20000)", "RTT p50 (us)",
               "RTT p99 (us)"});
  for (int services : {4, 16, 64, 256}) {
    for (StackKind stack :
         {StackKind::kLinux, StackKind::kBypass, StackKind::kLauberhorn}) {
      const Cell cell = Measure(stack, services, kRate);
      table.AddRow({Table::Int(services), ToString(stack),
                    Table::Int(static_cast<int64_t>(cell.completed)), Us(cell.p50),
                    Us(cell.p99)});
    }
  }
  PrintTable(table, csv);

  std::printf("\nPaper claim (§4): with few services everyone does well (bypass included);\n"
              "as endpoints exceed cores, static binding loses (head-of-line blocking on\n"
              "queues) while Lauberhorn keeps dispatching any service to any core with\n"
              "the NIC tracking OS scheduling state.\n");
  return 0;
}
