// BRKDN — per-stage latency budgets from request spans (DESIGN.md §12).
//
// Every stack stamps the same eight span stages (src/stats/span.h); this
// bench runs an unloaded closed-loop echo on each stack, aggregates the
// seven inter-stage segments, and prints where each stack's nanoseconds go.
// The breakdown makes the paper's §4 argument mechanistic: the Lauberhorn
// hot path collapses dispatch/deliver/sched to near-zero because the NIC
// fills a stalled CONTROL-line load, while Linux pays for the softirq +
// socket + worker handoff and bypass pays in polling granularity.
//
//   --smoke   gate mode: exit nonzero unless every completed request on
//             every stack reconstructs a complete, monotonic span and the
//             span count matches the client's completed-RPC count.
//   --trace   write all spans as Chrome trace-event JSON (Perfetto-loadable).
//   --json    machine-readable per-stack budgets + full metrics registry.
#include <cinttypes>

#include "bench/common.h"
#include "src/stats/chrome_trace.h"

namespace lauberhorn {
namespace {

struct StackResult {
  std::string name;
  SpanCollector::StageBudget budget;
  uint64_t client_completed = 0;
  uint64_t spans_completed = 0;
  uint64_t spans_dropped = 0;
  uint64_t orphan_marks = 0;
  uint64_t reopened = 0;
  bool all_complete = true;
  bool all_monotonic = true;
  std::vector<ChromeTraceEvent> events;
  std::string metrics_json;
};

StackResult MeasureStack(StackKind stack, bool hot, int requests) {
  MachineConfig config;
  config.stack = stack;
  config.platform = PlatformSpec::EnzianEci();
  config.num_cores = 8;
  config.nic_queues = stack == StackKind::kBypass ? 4 : 2;
  config.enable_spans = true;
  Machine machine(std::move(config));
  const ServiceDef& echo =
      machine.AddService(ServiceRegistry::MakeEchoService(1, 7000));
  machine.Start();
  if (stack == StackKind::kLauberhorn && hot) {
    machine.StartHotLoop(echo);
  }
  machine.sim().RunUntil(Milliseconds(1));

  machine.ResetMeasurement();
  ClosedLoopGenerator::Config generator_config;
  generator_config.concurrency = 1;
  generator_config.max_requests = static_cast<uint64_t>(requests);
  if (stack == StackKind::kLauberhorn && !hot) {
    generator_config.think_time = Microseconds(300);
  }
  std::vector<WorkloadTarget> targets = {{&echo, 0, 64, 1.0}};
  ClosedLoopGenerator generator(machine.sim(), machine.client(), targets,
                                generator_config);
  if (stack == StackKind::kLauberhorn && !hot) {
    // Cold measurement: keep retiring the endpoint's core so every request
    // takes the kernel-channel route (same policy as TBL-END).
    machine.StartHotLoop(echo);
    const auto endpoints = machine.EndpointsOf(echo);
    auto retire = std::make_shared<std::function<void()>>();
    *retire = [&machine, endpoints, retire]() {
      for (uint32_t ep : endpoints) {
        machine.lauberhorn_runtime()->Deschedule(ep);
      }
      machine.sim().Schedule(Microseconds(150), *retire);
    };
    machine.sim().Schedule(Microseconds(100), *retire);
  }
  bool finished = false;
  generator.on_finished = [&finished]() { finished = true; };
  generator.Start();
  const SimTime deadline = machine.sim().Now() + Seconds(2);
  while (!finished && machine.sim().Now() < deadline) {
    machine.sim().RunUntil(machine.sim().Now() + Milliseconds(1));
  }

  const SpanCollector& spans = *machine.spans();
  StackResult result;
  result.name = ToString(stack) + (stack == StackKind::kLauberhorn
                                       ? (hot ? " hot" : " cold")
                                       : "");
  result.budget = spans.Aggregate();
  result.client_completed = machine.client().completed();
  result.spans_completed = spans.completed().size();
  result.spans_dropped = spans.dropped();
  result.orphan_marks = spans.orphan_marks();
  result.reopened = spans.reopened();
  for (const RequestSpan& span : spans.completed()) {
    result.all_complete = result.all_complete && span.Complete();
    result.all_monotonic = result.all_monotonic && span.Monotonic();
  }
  result.events = SpanTraceEvents(spans);
  MetricsRegistry metrics;
  machine.ExportMetrics(metrics);
  result.metrics_json = metrics.ToJson();
  return result;
}

std::string SegmentsJson(const SpanCollector::StageBudget& budget) {
  JsonObject obj;
  for (size_t i = 0; i < kSpanSegmentCount; ++i) {
    obj.Field(SpanSegmentName(i), ToMicroseconds(Duration(
                                      budget.segments[i].Mean())));
  }
  return obj.Render();
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  using namespace lauberhorn;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("BRKDN", "per-stage latency budget per stack (64B echo, unloaded)");

  const int requests = args.smoke ? 100 : 400;
  std::vector<StackResult> results;
  results.push_back(MeasureStack(StackKind::kLinux, true, requests));
  results.push_back(MeasureStack(StackKind::kBypass, true, requests));
  results.push_back(MeasureStack(StackKind::kLauberhorn, true, requests));
  results.push_back(MeasureStack(StackKind::kLauberhorn, false, requests));

  // Budget table: one column per stack, one row per inter-stage segment
  // (mean), plus the p50 of the full wire-RX -> client-RX span.
  std::vector<std::string> header = {"segment (mean us)"};
  for (const StackResult& r : results) {
    header.push_back(r.name);
  }
  Table table(header);
  for (size_t i = 0; i < kSpanSegmentCount; ++i) {
    std::vector<std::string> row = {SpanSegmentName(i)};
    for (const StackResult& r : results) {
      row.push_back(Us(Duration(r.budget.segments[i].Mean())));
    }
    table.AddRow(row);
  }
  std::vector<std::string> total_row = {"total (p50)"};
  for (const StackResult& r : results) {
    total_row.push_back(Us(r.budget.total.P50()));
  }
  table.AddRow(total_row);
  PrintTable(table, args.csv);

  std::printf("\n");
  for (const StackResult& r : results) {
    std::printf("%-18s spans=%" PRIu64 "/%" PRIu64
                " complete=%s monotonic=%s dropped=%" PRIu64
                " orphan_marks=%" PRIu64 " reopened=%" PRIu64 "\n",
                r.name.c_str(), r.spans_completed, r.client_completed,
                r.all_complete ? "yes" : "NO", r.all_monotonic ? "yes" : "NO",
                r.spans_dropped, r.orphan_marks, r.reopened);
  }

  if (!args.trace.empty()) {
    // One trace file covering all stacks: give each run its own pid block so
    // same-valued request ids from different machines don't collide.
    std::vector<ChromeTraceEvent> all;
    for (size_t s = 0; s < results.size(); ++s) {
      for (ChromeTraceEvent ev : results[s].events) {
        ev.pid += static_cast<int>(s) * 10;
        all.push_back(std::move(ev));
      }
    }
    if (!EventsNestCorrectly(all)) {
      std::fprintf(stderr, "trace events do not nest\n");
      return 1;
    }
    if (!WriteJsonFile(args.trace, RenderChromeTrace(all))) {
      return 1;
    }
    std::printf("\nwrote %zu trace events to %s\n", all.size(),
                args.trace.c_str());
  }

  if (!args.json.empty()) {
    std::vector<std::string> stacks;
    for (const StackResult& r : results) {
      JsonObject obj;
      obj.Field("stack", r.name)
          .Field("requests", r.client_completed)
          .Field("spans_completed", r.spans_completed)
          .Field("all_complete", r.all_complete)
          .Field("all_monotonic", r.all_monotonic)
          .Raw("segments_us", SegmentsJson(r.budget))
          .Field("total_p50_us", ToMicroseconds(r.budget.total.P50()))
          .Field("total_p99_us", ToMicroseconds(r.budget.total.P99()))
          .Raw("metrics", r.metrics_json);
      stacks.push_back(obj.Render());
    }
    JsonObject root;
    root.Field("bench", std::string("latency_breakdown"))
        .Field("smoke", args.smoke)
        .Raw("stacks", JsonArray(stacks));
    if (!WriteJsonFile(args.json, root.Render())) {
      return 1;
    }
  }

  if (args.smoke) {
    bool ok = true;
    for (const StackResult& r : results) {
      if (!r.all_complete || !r.all_monotonic ||
          r.spans_completed != r.client_completed || r.spans_completed == 0) {
        std::fprintf(stderr,
                     "SMOKE FAIL %s: spans=%" PRIu64 " completed=%" PRIu64
                     " complete=%d monotonic=%d\n",
                     r.name.c_str(), r.spans_completed, r.client_completed,
                     r.all_complete, r.all_monotonic);
        ok = false;
      }
    }
    if (!ok) {
      return 1;
    }
    std::printf("\nsmoke: all spans complete and monotonic on every stack\n");
  }

  std::printf("\nReading the table: Lauberhorn-hot collapses dispatch/deliver/sched —\n"
              "the NIC answers a stalled CONTROL-line load with code pointer +\n"
              "arguments, so no software runs between admission and the handler.\n"
              "Linux pays the softirq -> socket -> worker handoff in 'deliver' and\n"
              "'sched'; bypass hides them in poll granularity; the cold path buys\n"
              "generality with one kernel-channel dispatch + context switch.\n");
  return 0;
}
