// TBL-END — the paper's central quantitative claim (§1, §4): for small RPCs,
// Lauberhorn's end-system latency and per-RPC CPU cost beat the fastest
// kernel-bypass configuration and dwarf the kernel stack, while the cold
// (kernel-mediated) path stays well under the Linux baseline.
//
// Method: unloaded closed-loop echo (64 B payload, zero service time) on each
// stack; end-system latency = request-on-wire to response-on-wire at the
// server NIC; cycles/RPC = total busy CPU cycles / completed RPCs.
#include "bench/common.h"

namespace lauberhorn {
namespace {

struct Row {
  std::string name;
  Duration p50 = 0;
  Duration p99 = 0;
  double cycles = 0;
  Duration rtt = 0;
};

Row MeasureStack(StackKind stack, bool hot) {
  EchoSetup setup = EchoSetup::Make(stack, PlatformSpec::EnzianEci());
  Machine& machine = *setup.machine;

  if (stack == StackKind::kLauberhorn && !hot) {
    // Cold measurement: retire the loop before every request below.
  }

  // 200 closed-loop requests.
  machine.ResetMeasurement();
  ClosedLoopGenerator::Config generator_config;
  generator_config.concurrency = 1;
  generator_config.max_requests = 200;
  // For the cold path, space requests out and deschedule between them so each
  // one takes the kernel-channel route.
  if (stack == StackKind::kLauberhorn && !hot) {
    generator_config.think_time = Microseconds(300);
  }
  std::vector<WorkloadTarget> targets = {{setup.echo, 0, 64, 1.0}};
  ClosedLoopGenerator generator(machine.sim(), machine.client(), targets,
                                generator_config);
  bool retiring = stack == StackKind::kLauberhorn && !hot;
  if (retiring) {
    // Aggressive policy: give the core back as soon as the endpoint idles, so
    // every request takes the cold (kernel-channel) path.
    const auto endpoints = machine.EndpointsOf(*setup.echo);
    auto retire = std::make_shared<std::function<void()>>();
    *retire = [&machine, endpoints, retire]() {
      for (uint32_t ep : endpoints) {
        machine.lauberhorn_runtime()->Deschedule(ep);
      }
      machine.sim().Schedule(Microseconds(150), *retire);
    };
    machine.sim().Schedule(Microseconds(100), *retire);
  }
  bool finished = false;
  generator.on_finished = [&finished]() { finished = true; };
  generator.Start();
  const SimTime deadline = machine.sim().Now() + Seconds(2);
  while (!finished && machine.sim().Now() < deadline) {
    machine.sim().RunUntil(machine.sim().Now() + Milliseconds(1));
  }

  Row row;
  row.p50 = machine.end_system_latency().P50();
  row.p99 = machine.end_system_latency().P99();
  row.cycles = machine.CyclesPerRpc();
  row.rtt = generator.rtt().P50();
  return row;
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  const bool csv = lauberhorn::BenchArgs::Parse(argc, argv).csv;
  using namespace lauberhorn;
  PrintHeader("TBL-END",
              "end-system latency and CPU cost per 64B RPC (Enzian platform)");

  Table table({"stack", "end-sys p50 (us)", "end-sys p99 (us)", "cycles/RPC",
               "client RTT p50 (us)"});
  auto add = [&](const std::string& name, Row row) {
    table.AddRow({name, Us(row.p50), Us(row.p99), Table::Int(static_cast<int64_t>(row.cycles)),
                  Us(row.rtt)});
  };
  add("linux (Fig.1 + kernel stack)", MeasureStack(StackKind::kLinux, true));
  add("kernel-bypass (spin-poll)", MeasureStack(StackKind::kBypass, true));
  add("lauberhorn (hot path)", MeasureStack(StackKind::kLauberhorn, true));
  add("lauberhorn (cold, via kernel)", MeasureStack(StackKind::kLauberhorn, false));
  PrintTable(table, csv);

  std::printf("\nPaper claim (§4): hot-path RPC dispatch executes every step of §2 on the\n"
              "NIC — the stalled load returns code pointer + arguments, so software\n"
              "overhead (and cycles/RPC) collapses below even kernel bypass. The cold\n"
              "path pays one kernel-channel dispatch + context switch, still far below\n"
              "the traditional stack.\n");
  return 0;
}
