// RECOV — NIC hot recovery: OS-shadowed state, watchdog reset, chaos campaign.
//
// Part 1 (recover): kills the Lauberhorn NIC once mid-load and measures the
// recovery path end to end — watchdog detection + reset + shadow replay
// blackout, the goodput dip around the crash, and at-most-once across the
// outage (every sequence executes exactly once; delivered-but-unanswered
// requests are pinned in flight by the replay rules and surface as client
// timeouts, never as second executions). The run also publishes recovery
// into a cluster directory the way a dispatch plane would: the replica goes
// kDegraded while the shadow replays (LeastLoaded diverts) and back kUp
// after — never kDown, so the consistent-hash ring keeps every key in place
// (churn is measured and must be zero).
//
// Part 2 (chaos): FaultPlan::Chaos composes EVERY fault layer — burst loss,
// duplication, reordering, corruption, coherence fill delays, IOMMU bursts,
// DMA errors, OS crash windows, wedged endpoints, CC grant loss + ECN
// corruption, and periodic whole-NIC crashes — across many seeds. Three
// invariants must hold for every seed: zero duplicate executions, every
// call reaches a terminal outcome (no wedged termination), and span
// accounting closes (all completed spans monotonic; incomplete ones are
// covered by the dedup-replay/orphan counters).
//
// --smoke is the CI gate: the single-crash measurement plus a short chaos
// campaign over a few seeds, all gates enforced.
#include <cmath>
#include <unordered_map>

#include "bench/common.h"
#include "src/cluster/directory.h"
#include "src/cluster/lb_policy.h"

namespace lauberhorn {
namespace {

ServiceDef MakeCountingService(std::unordered_map<uint64_t, uint32_t>& execs,
                               Duration service_time) {
  ServiceDef def;
  def.service_id = 1;
  def.name = "counted-echo";
  def.udp_port = 7000;
  MethodDef method;
  method.method_id = 0;
  method.name = "counted";
  method.request_sig.args = {WireType::kU64, WireType::kBytes};
  method.response_sig.args = {WireType::kU64, WireType::kBytes};
  method.handler = [&execs](const std::vector<WireValue>& args) {
    ++execs[args.at(0).scalar];
    return std::vector<WireValue>{args.at(0), args.at(1)};
  };
  method.SetFixedServiceTime(service_time);
  def.methods[0] = std::move(method);
  return def;
}

MachineConfig ReliableLauberhorn(uint64_t seed) {
  MachineConfig config;
  config.stack = StackKind::kLauberhorn;
  config.platform = PlatformSpec::EnzianEci();
  config.num_cores = 8;
  config.seed = seed;
  config.client_retransmit_timeout = Microseconds(300);
  config.client_max_retransmits = 8;
  config.client_backoff_multiplier = 2.0;
  config.client_max_retransmit_timeout = Milliseconds(5);
  config.client_retransmit_jitter = 0.2;
  config.client_retry_budget_per_sec = 50000.0;
  config.server_dedup = true;
  return config;
}

// --- Part 1: single-crash recovery measurement -------------------------------

struct RecoverCell {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t done = 0;  // terminal outcomes delivered (any status)
  uint64_t dup_execs = 0;
  uint64_t total_execs = 0;
  uint64_t retransmits = 0;
  uint64_t recoveries = 0;
  uint64_t replayed_endpoints = 0;
  uint64_t replayed_dedup_completed = 0;
  uint64_t pinned_in_flight = 0;   // delivered-but-unanswered at crash
  uint64_t dropped_undelivered = 0;
  uint64_t crashed_polls = 0;
  uint64_t drops_nic_down = 0;
  uint64_t shadow_writes = 0;
  Duration blackout = 0;  // watchdog detection -> shadow replay done
  double goodput_before = 0;  // ok/ms mean before the crash
  double goodput_crash = 0;   // ok/ms in the crash millisecond
  double goodput_after = 0;   // ok/ms mean after recovery
  uint64_t marked_degraded = 0;
  uint64_t marked_up = 0;
  uint64_t marked_down = 0;
  uint64_t ring_moves_degraded = 0;  // hash assignments moved by kDegraded
  uint64_t ring_moves_down = 0;      // ...vs. what a kDown would have moved
};

RecoverCell MeasureRecovery(uint64_t seed) {
  MachineConfig config = ReliableLauberhorn(seed);
  const Duration crash_at = Milliseconds(5);
  config.faults.nic_crash.first_crash_at = crash_at;
  config.faults.nic_crash.crash_period = 0;  // one crash
  config.faults.nic_crash.reset_latency = Microseconds(80);

  std::unordered_map<uint64_t, uint32_t> execs;
  Machine machine(std::move(config));
  const ServiceDef& svc = machine.AddService(
      MakeCountingService(execs, Microseconds(1)), /*max_cores=*/4);
  machine.Start();
  machine.StartHotLoop(svc);

  // The cluster-plane view of this machine: one real replica among three (the
  // other two only shape the hash ring). Recovery publishes kDegraded/kUp.
  ServiceDirectory directory;
  for (uint32_t r = 0; r < 3; ++r) {
    directory.AddReplica(1, ReplicaInfo{});
  }
  NicRecoveryManager* recovery = machine.nic_recovery();
  recovery->on_recovery_begin = [&]() { directory.MarkDegraded(1, 0); };
  recovery->on_recovery_end = [&]() { directory.MarkUp(1, 0); };

  // Hash-ring churn: assignments of 512 keys with all replicas up, vs. the
  // same keys while replica 0 is degraded (stays a candidate), vs. replica 0
  // excluded (what a kDown would do). Degradation must move nothing.
  ConsistentHashPolicy ring;
  const std::vector<size_t> all = {0, 1, 2};
  const std::vector<size_t> without0 = {1, 2};
  std::vector<size_t> baseline;
  for (uint64_t key = 0; key < 512; ++key) {
    baseline.push_back(ring.Pick(directory, 1, all, key, 0));
  }

  machine.sim().RunUntil(Milliseconds(1));

  const double rate_rps = 40000.0;
  const Duration window = Milliseconds(12);
  const SimTime stop = machine.sim().Now() + window;
  const Duration gap = NanosecondsF(1e9 / rate_rps);
  const std::vector<uint8_t> payload(64, 0xab);

  RecoverCell cell;
  std::vector<uint64_t> ok_per_ms(32, 0);
  auto fire = std::make_shared<Function<void()>>();
  uint64_t seq = 0;
  *fire = [&machine, &svc, &cell, &ok_per_ms, &seq, fire, stop, gap,
           payload]() {
    if (machine.sim().Now() >= stop) {
      return;
    }
    std::vector<WireValue> args = {WireValue::U64(seq++),
                                   WireValue::Bytes(payload)};
    machine.client().Call(
        svc, 0, args, [&machine, &cell, &ok_per_ms](const RpcMessage& response, Duration) {
          ++cell.done;
          if (response.status == RpcStatus::kOk) {
            ++cell.ok;
            const size_t bucket =
                static_cast<size_t>(machine.sim().Now() / Milliseconds(1));
            if (bucket < ok_per_ms.size()) {
              ++ok_per_ms[bucket];
            }
          }
        });
    machine.sim().Schedule(gap, [fire]() { (*fire)(); });
  };
  (*fire)();
  machine.sim().RunUntil(stop + Milliseconds(15));

  cell.sent = seq;
  cell.retransmits = machine.client().retransmits();
  for (const auto& [s, count] : execs) {
    cell.total_execs += count;
    if (count > 1) {
      ++cell.dup_execs;
    }
  }
  const auto& rec = recovery->stats();
  cell.recoveries = rec.recoveries;
  cell.replayed_endpoints = rec.replayed_endpoints;
  cell.replayed_dedup_completed = rec.replayed_dedup_completed;
  cell.pinned_in_flight = rec.replayed_dedup_in_flight;
  cell.dropped_undelivered = rec.dropped_undelivered;
  cell.blackout = rec.last_blackout;
  const auto& nic = machine.lauberhorn_nic()->stats();
  cell.crashed_polls = nic.crashed_polls;
  cell.drops_nic_down = nic.drops_nic_down;
  cell.shadow_writes = machine.nic_shadow()->writes();

  // Goodput shape around the crash millisecond (bucket 5): warm buckets
  // before, the crash bucket itself, and the recovered steady state.
  const size_t crash_bucket = static_cast<size_t>(crash_at / Milliseconds(1));
  double before = 0;
  for (size_t b = 2; b < crash_bucket; ++b) {
    before += static_cast<double>(ok_per_ms[b]);
  }
  cell.goodput_before = before / static_cast<double>(crash_bucket - 2);
  cell.goodput_crash = static_cast<double>(ok_per_ms[crash_bucket]);
  double after = 0;
  for (size_t b = crash_bucket + 2; b < 12; ++b) {
    after += static_cast<double>(ok_per_ms[b]);
  }
  cell.goodput_after = after / static_cast<double>(12 - crash_bucket - 2);

  cell.marked_degraded = directory.stats().marked_degraded;
  cell.marked_up = directory.stats().marked_up;
  cell.marked_down = directory.stats().marked_down;
  // Re-degrade for the churn measurement (the live recovery already marked
  // it up); a degraded replica stays in the candidate set.
  directory.MarkDegraded(1, 0);
  for (uint64_t key = 0; key < 512; ++key) {
    if (ring.Pick(directory, 1, all, key, 0) != baseline[key]) {
      ++cell.ring_moves_degraded;
    }
  }
  directory.MarkUp(1, 0);
  for (uint64_t key = 0; key < 512; ++key) {
    if (ring.Pick(directory, 1, without0, key, 0) != baseline[key]) {
      ++cell.ring_moves_down;
    }
  }
  return cell;
}

// --- Part 2: chaos campaign --------------------------------------------------

struct ChaosCell {
  uint64_t seed = 0;
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t done = 0;
  uint64_t dup_execs = 0;
  uint64_t total_execs = 0;
  uint64_t nic_crashes = 0;
  uint64_t recoveries = 0;
  uint64_t os_crashes = 0;
  uint64_t net_drops = 0;
  uint64_t grant_losses = 0;
  uint64_t ecn_corruptions = 0;
  uint64_t retransmits = 0;
  uint64_t spans_completed = 0;
  uint64_t spans_incomplete = 0;  // completed spans missing stages
  uint64_t span_monotonic_violations = 0;
  uint64_t span_orphans_accounted = 0;  // replays + dup drops + reopens + marks
  uint64_t spans_open = 0;
};

ChaosCell MeasureChaos(uint64_t seed, bool smoke) {
  MachineConfig config = ReliableLauberhorn(seed);
  config.faults = FaultPlan::Chaos(1.0, seed);
  config.client_congestion = true;  // exercise the CC fault layer too
  config.enable_spans = true;

  std::unordered_map<uint64_t, uint32_t> execs;
  Machine machine(std::move(config));
  const ServiceDef& svc = machine.AddService(
      MakeCountingService(execs, Microseconds(1)), /*max_cores=*/4);
  machine.Start();
  machine.StartHotLoop(svc);
  machine.sim().RunUntil(Milliseconds(1));

  // The window covers the first NIC crash (8 ms), the first OS crash window
  // (20 ms) and, outside smoke, the second NIC crash (25 ms) — the outages
  // interleave by construction of the chaos plan.
  const double rate_rps = 8000.0;
  const Duration window = smoke ? Milliseconds(30) : Milliseconds(45);
  const SimTime stop = machine.sim().Now() + window;
  const Duration gap = NanosecondsF(1e9 / rate_rps);
  const std::vector<uint8_t> payload(64, 0xab);

  ChaosCell cell;
  cell.seed = seed;
  auto fire = std::make_shared<Function<void()>>();
  uint64_t seq = 0;
  *fire = [&machine, &svc, &cell, &seq, fire, stop, gap, payload]() {
    if (machine.sim().Now() >= stop) {
      return;
    }
    std::vector<WireValue> args = {WireValue::U64(seq++),
                                   WireValue::Bytes(payload)};
    machine.client().Call(svc, 0, args,
                          [&cell](const RpcMessage& response, Duration) {
                            ++cell.done;
                            if (response.status == RpcStatus::kOk) {
                              ++cell.ok;
                            }
                          });
    machine.sim().Schedule(gap, [fire]() { (*fire)(); });
  };
  (*fire)();
  // Drain past the full backoff ladder so every call reaches a terminal
  // outcome — the termination invariant below depends on it.
  machine.sim().RunUntil(stop + Milliseconds(40));

  cell.sent = seq;
  for (const auto& [s, count] : execs) {
    cell.total_execs += count;
    if (count > 1) {
      ++cell.dup_execs;
    }
  }
  const auto& faults = machine.fault_injector()->stats();
  cell.nic_crashes = faults.nic_crashes;
  cell.os_crashes = faults.os_crashes;
  cell.net_drops = faults.net_drops;
  cell.grant_losses = faults.cc_grant_losses;
  cell.ecn_corruptions = faults.cc_ecn_corruptions;
  cell.recoveries = machine.nic_recovery()->stats().recoveries;
  cell.retransmits = machine.client().retransmits();

  const SpanCollector& spans = *machine.spans();
  for (const RequestSpan& span : spans.completed()) {
    ++cell.spans_completed;
    if (!span.Complete()) {
      ++cell.spans_incomplete;
    }
    if (!span.Monotonic()) {
      ++cell.span_monotonic_violations;
    }
  }
  cell.spans_open = spans.open_count();
  const auto& nic = machine.lauberhorn_nic()->stats();
  cell.span_orphans_accounted = nic.dup_replays + nic.dup_drops_in_flight +
                                spans.reopened() + spans.orphan_marks();
  return cell;
}

}  // namespace
}  // namespace lauberhorn

int main(int argc, char** argv) {
  using namespace lauberhorn;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  PrintHeader("RECOV",
              "NIC hot recovery: shadow replay blackout + randomized chaos campaign");

  bool violation = false;
  std::vector<std::string> json_rows;

  // -- Part 1: single crash under load --
  const RecoverCell r = MeasureRecovery(args.seed);
  Table recover({"metric", "value"});
  recover.AddRow({"sent", Table::Int(static_cast<int64_t>(r.sent))});
  recover.AddRow({"goodput", Table::Int(static_cast<int64_t>(r.ok))});
  recover.AddRow({"blackout (us)", Us(r.blackout)});
  recover.AddRow({"goodput before (ok/ms)", Table::Num(r.goodput_before, 1)});
  recover.AddRow({"goodput crash ms (ok/ms)", Table::Num(r.goodput_crash, 1)});
  recover.AddRow({"goodput after (ok/ms)", Table::Num(r.goodput_after, 1)});
  recover.AddRow({"recoveries", Table::Int(static_cast<int64_t>(r.recoveries))});
  recover.AddRow({"replayed endpoints", Table::Int(static_cast<int64_t>(r.replayed_endpoints))});
  recover.AddRow({"replayed dedup (completed)", Table::Int(static_cast<int64_t>(r.replayed_dedup_completed))});
  recover.AddRow({"pinned in flight", Table::Int(static_cast<int64_t>(r.pinned_in_flight))});
  recover.AddRow({"dropped undelivered", Table::Int(static_cast<int64_t>(r.dropped_undelivered))});
  recover.AddRow({"crashed polls", Table::Int(static_cast<int64_t>(r.crashed_polls))});
  recover.AddRow({"drops while down", Table::Int(static_cast<int64_t>(r.drops_nic_down))});
  recover.AddRow({"shadow writes", Table::Int(static_cast<int64_t>(r.shadow_writes))});
  recover.AddRow({"retransmits", Table::Int(static_cast<int64_t>(r.retransmits))});
  recover.AddRow({"dup execs", Table::Int(static_cast<int64_t>(r.dup_execs))});
  recover.AddRow({"ring moves (degraded)", Table::Int(static_cast<int64_t>(r.ring_moves_degraded))});
  recover.AddRow({"ring moves (down)", Table::Int(static_cast<int64_t>(r.ring_moves_down))});
  PrintTable(recover, args.csv);

  {
    JsonObject row;
    row.Field("mode", std::string("recover"))
        .Field("sent", r.sent)
        .Field("goodput", r.ok)
        .Field("blackout_us", ToMicroseconds(r.blackout))
        .Field("goodput_before_per_ms", r.goodput_before)
        .Field("goodput_crash_per_ms", r.goodput_crash)
        .Field("goodput_after_per_ms", r.goodput_after)
        .Field("recoveries", r.recoveries)
        .Field("replayed_endpoints", r.replayed_endpoints)
        .Field("replayed_dedup_completed", r.replayed_dedup_completed)
        .Field("pinned_in_flight", r.pinned_in_flight)
        .Field("dropped_undelivered", r.dropped_undelivered)
        .Field("crashed_polls", r.crashed_polls)
        .Field("drops_nic_down", r.drops_nic_down)
        .Field("shadow_writes", r.shadow_writes)
        .Field("retransmits", r.retransmits)
        .Field("duplicate_executions", r.dup_execs)
        .Field("marked_degraded", r.marked_degraded)
        .Field("marked_up", r.marked_up)
        .Field("marked_down", r.marked_down)
        .Field("ring_moves_degraded", r.ring_moves_degraded)
        .Field("ring_moves_down", r.ring_moves_down);
    json_rows.push_back(row.Render());
  }

  // Acceptance gates for the recovery path.
  if (r.dup_execs != 0) {
    std::fprintf(stderr, "VIOLATION: %llu sequences executed more than once across the crash\n",
                 static_cast<unsigned long long>(r.dup_execs));
    violation = true;
  }
  if (r.total_execs != r.sent) {
    std::fprintf(stderr, "VIOLATION: %llu executions for %llu sent (at-most-once accounting broken)\n",
                 static_cast<unsigned long long>(r.total_execs),
                 static_cast<unsigned long long>(r.sent));
    violation = true;
  }
  if (r.done != r.sent) {
    std::fprintf(stderr, "VIOLATION: only %llu of %llu calls reached a terminal outcome\n",
                 static_cast<unsigned long long>(r.done),
                 static_cast<unsigned long long>(r.sent));
    violation = true;
  }
  if (r.recoveries != 1) {
    std::fprintf(stderr, "VIOLATION: expected exactly one recovery, saw %llu\n",
                 static_cast<unsigned long long>(r.recoveries));
    violation = true;
  }
  if (r.blackout <= 0 || r.blackout > Microseconds(500)) {
    std::fprintf(stderr, "VIOLATION: blackout %.1f us outside (0, 500] us\n",
                 ToMicroseconds(r.blackout));
    violation = true;
  }
  if (r.goodput_after < 0.8 * r.goodput_before) {
    std::fprintf(stderr, "VIOLATION: goodput did not recover (%.1f/ms after vs %.1f/ms before)\n",
                 r.goodput_after, r.goodput_before);
    violation = true;
  }
  if (r.marked_degraded != 1 || r.marked_up != 1 || r.marked_down != 0) {
    std::fprintf(stderr, "VIOLATION: directory saw degraded=%llu up=%llu down=%llu (want 1/1/0)\n",
                 static_cast<unsigned long long>(r.marked_degraded),
                 static_cast<unsigned long long>(r.marked_up),
                 static_cast<unsigned long long>(r.marked_down));
    violation = true;
  }
  if (r.ring_moves_degraded != 0) {
    std::fprintf(stderr, "VIOLATION: kDegraded moved %llu hash-ring keys (must be 0)\n",
                 static_cast<unsigned long long>(r.ring_moves_degraded));
    violation = true;
  }

  // -- Part 2: chaos campaign --
  const int num_seeds = args.smoke ? 4 : 24;
  std::vector<uint64_t> seeds;
  for (int i = 0; i < num_seeds; ++i) {
    seeds.push_back(args.seed + static_cast<uint64_t>(i) * 101);
  }
  const std::vector<ChaosCell> cells = RunTrialsParallel(
      num_seeds,
      [&](int i) { return MeasureChaos(seeds[static_cast<size_t>(i)], args.smoke); });

  std::printf("\nChaos campaign: all fault layers composed, %d seeds\n", num_seeds);
  Table chaos({"seed", "sent", "goodput", "retx", "nic-crash", "recover",
               "os-crash", "drops", "grant-loss", "ecn-flip", "spans",
               "incomplete", "open", "dup-execs"});
  for (const ChaosCell& cell : cells) {
    chaos.AddRow({Table::Int(static_cast<int64_t>(cell.seed)),
                  Table::Int(static_cast<int64_t>(cell.sent)),
                  Table::Int(static_cast<int64_t>(cell.ok)),
                  Table::Int(static_cast<int64_t>(cell.retransmits)),
                  Table::Int(static_cast<int64_t>(cell.nic_crashes)),
                  Table::Int(static_cast<int64_t>(cell.recoveries)),
                  Table::Int(static_cast<int64_t>(cell.os_crashes)),
                  Table::Int(static_cast<int64_t>(cell.net_drops)),
                  Table::Int(static_cast<int64_t>(cell.grant_losses)),
                  Table::Int(static_cast<int64_t>(cell.ecn_corruptions)),
                  Table::Int(static_cast<int64_t>(cell.spans_completed)),
                  Table::Int(static_cast<int64_t>(cell.spans_incomplete)),
                  Table::Int(static_cast<int64_t>(cell.spans_open)),
                  Table::Int(static_cast<int64_t>(cell.dup_execs))});
    JsonObject row;
    row.Field("mode", std::string("chaos"))
        .Field("seed", cell.seed)
        .Field("sent", cell.sent)
        .Field("goodput", cell.ok)
        .Field("retransmits", cell.retransmits)
        .Field("nic_crashes", cell.nic_crashes)
        .Field("recoveries", cell.recoveries)
        .Field("os_crashes", cell.os_crashes)
        .Field("net_drops", cell.net_drops)
        .Field("grant_losses", cell.grant_losses)
        .Field("ecn_corruptions", cell.ecn_corruptions)
        .Field("spans_completed", cell.spans_completed)
        .Field("spans_incomplete", cell.spans_incomplete)
        .Field("spans_open", cell.spans_open)
        .Field("span_orphans_accounted", cell.span_orphans_accounted)
        .Field("duplicate_executions", cell.dup_execs);
    json_rows.push_back(row.Render());

    // Invariants, per seed.
    if (cell.dup_execs != 0) {
      std::fprintf(stderr, "VIOLATION: seed %llu executed %llu sequences twice\n",
                   static_cast<unsigned long long>(cell.seed),
                   static_cast<unsigned long long>(cell.dup_execs));
      violation = true;
    }
    if (cell.done != cell.sent) {
      std::fprintf(stderr, "VIOLATION: seed %llu terminated %llu of %llu calls\n",
                   static_cast<unsigned long long>(cell.seed),
                   static_cast<unsigned long long>(cell.done),
                   static_cast<unsigned long long>(cell.sent));
      violation = true;
    }
    if (cell.ok == 0) {
      std::fprintf(stderr, "VIOLATION: seed %llu completed nothing\n",
                   static_cast<unsigned long long>(cell.seed));
      violation = true;
    }
    if (cell.nic_crashes == 0 || cell.recoveries != cell.nic_crashes) {
      std::fprintf(stderr, "VIOLATION: seed %llu recovered %llu of %llu NIC crashes\n",
                   static_cast<unsigned long long>(cell.seed),
                   static_cast<unsigned long long>(cell.recoveries),
                   static_cast<unsigned long long>(cell.nic_crashes));
      violation = true;
    }
    if (cell.span_monotonic_violations != 0) {
      std::fprintf(stderr, "VIOLATION: seed %llu has %llu non-monotonic spans\n",
                   static_cast<unsigned long long>(cell.seed),
                   static_cast<unsigned long long>(cell.span_monotonic_violations));
      violation = true;
    }
    // Span completeness: a completed span may miss stages only when the
    // response came from the dedup cache / a retransmit reopened it — all
    // accounted by the NIC's duplicate counters and the collector's own
    // orphan bookkeeping.
    if (cell.spans_incomplete > cell.span_orphans_accounted) {
      std::fprintf(stderr, "VIOLATION: seed %llu has %llu incomplete spans, only %llu accounted\n",
                   static_cast<unsigned long long>(cell.seed),
                   static_cast<unsigned long long>(cell.spans_incomplete),
                   static_cast<unsigned long long>(cell.span_orphans_accounted));
      violation = true;
    }
  }
  PrintTable(chaos, args.csv);

  if (!args.json.empty()) {
    JsonObject doc;
    doc.Field("bench", std::string("RECOV"))
        .Field("seed", args.seed)
        .Field("smoke", args.smoke)
        .Field("chaos_seeds", static_cast<uint64_t>(num_seeds))
        .Raw("rows", JsonArray(json_rows));
    if (!WriteJsonFile(args.json, doc.Render())) {
      return 1;
    }
  }

  std::printf("\nExpected shape: one crash costs a sub-millisecond blackout (watchdog\n"
              "detection + reset + shadow replay); goodput dips in the crash millisecond\n"
              "and recovers; the directory publishes degraded->up with zero hash-ring\n"
              "churn; and the chaos campaign holds zero duplicate executions and full\n"
              "termination on every seed.\n");
  return violation ? 1 : 0;
}
